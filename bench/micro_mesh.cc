// micro_mesh: the async service mesh (ISSUE 10) vs the paper-faithful
// sync inter-tier chain, on the 3-tier RUBBoS system.
//
// Part A — transport comparison at saturating concurrency. The identical
// Markov user workload drives the full web→app→db chain with
//
//   sync       — blocking HTTP proxying + JDBC-style pool (the A/B
//                control: both Tomcat versions in the paper use it)
//   rpc fo=N   — async mesh: web→app fans each interaction into N
//                parallel fragment Render calls on multiplexed RPC
//                channels; within a fragment the app→db queries fan out
//                again. fo=1 isolates the transport change, fo=2/4 add
//                fan-out (tail amplification: a page is as slow as its
//                slowest fragment).
//   rpc+cache  — fo=2 with the sharded app-tier response cache.
//
// Queueing per tier is reported via each tier's requests_handled and the
// RPC tiers' rpc_inflight_peak (multiplexing depth actually reached).
//
// Part B — cache hit rate vs request-popularity skew. Zipf(theta) story
// ids drive ViewStory renders straight into the app tier over a mesh
// client; hit rate comes from the cache's own counters. Acceptance: >= 80%
// hits at theta = 1.0 with the body allocation shared, never copied.
//
// Results go to BENCH_mesh.json.
//
//   ./build/bench/micro_mesh
#include <algorithm>
#include <vector>

#include "bench_common.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_util.h"
#include "mesh/fanout.h"
#include "rubbos/app_logic.h"
#include "rubbos/app_rpc.h"
#include "rubbos/system.h"

using namespace hynet;
using namespace hynet::benchx;
using namespace hynet::rubbos;

namespace {

struct TierPoint {
  std::string system;
  int users = 0;
  int fanout = 0;
  bool cache = false;
  double throughput = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double tail_amp = 0.0;  // p99 / p50
  uint64_t errors = 0;
  // Queueing per tier: requests each tier absorbed during the run and the
  // multiplexing depth the RPC planes actually reached.
  uint64_t web_requests = 0;
  uint64_t app_requests = 0;
  uint64_t db_requests = 0;
  uint64_t app_inflight_peak = 0;
  uint64_t db_inflight_peak = 0;
  uint64_t fanout_calls = 0;
  uint64_t partial_failures = 0;
  uint64_t reconnects = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  double hit_rate = 0.0;
};

TierPoint RunTierPoint(const std::string& label, const std::string& transport,
                       int fanout, int cache_ttl_ms, int users,
                       double seconds) {
  ThreeTierConfig config;
  config.transport = transport;
  config.fanout = fanout;
  config.app_cache_ttl_ms = cache_ttl_ms;

  ThreeTierSystem system(config);
  system.Start();

  RubbosWorkloadConfig load;
  load.front = InetAddr::Loopback(system.FrontPort());
  load.users = users;
  load.think_time_sec = 0.7;
  load.warmup_sec = 1.5;
  load.measure_sec = seconds;
  const RubbosWorkloadResult r = RunRubbosWorkload(load);

  const ServerCounters web = system.WebSnapshot();
  const ServerCounters app = system.AppSnapshot();
  const ServerCounters db = system.DbSnapshot();
  const ResponseCache* cache = system.app_cache();

  TierPoint out;
  out.system = label;
  out.users = users;
  out.fanout = transport == "rpc" ? fanout : 0;
  out.cache = cache != nullptr;
  out.throughput = r.Throughput();
  out.p50_ms =
      static_cast<double>(r.response_time.Percentile(0.50)) / 1e6;
  out.p99_ms =
      static_cast<double>(r.response_time.Percentile(0.99)) / 1e6;
  out.tail_amp = out.p50_ms > 0 ? out.p99_ms / out.p50_ms : 0.0;
  out.errors = r.errors;
  out.web_requests = web.requests_handled;
  out.app_requests =
      transport == "rpc" ? app.rpc_requests : app.requests_handled;
  out.db_requests =
      transport == "rpc" ? db.rpc_requests : db.requests_handled;
  out.app_inflight_peak = app.rpc_inflight_peak;
  out.db_inflight_peak = db.rpc_inflight_peak;
  out.fanout_calls = web.mesh_fanout_calls + app.mesh_fanout_calls;
  out.partial_failures = web.mesh_partial_failures + app.mesh_partial_failures;
  out.reconnects = web.mesh_channel_reconnects + app.mesh_channel_reconnects;
  if (cache) {
    out.cache_hits = cache->Hits();
    out.cache_misses = cache->Misses();
    const uint64_t lookups = out.cache_hits + out.cache_misses;
    out.hit_rate =
        lookups ? static_cast<double>(out.cache_hits) / lookups : 0.0;
  }
  system.Stop();
  return out;
}

struct CachePoint {
  double theta = 0.0;
  uint64_t requests = 0;  // measured window only (after warmup)
  uint64_t errors = 0;
  double hit_rate = 0.0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t singleflight_waits = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  double throughput = 0.0;
};

// ViewUserInfo renders driven straight into the app tier over a mesh
// client, user ids Zipf(theta) over `key_space` users (the canonical
// cache key for ViewUserInfo is its user id). A warmup pass populates the
// cache; hit rate is the steady-state rate over the measured window.
// Requests issue in fan-out batches so concurrent same-key misses
// exercise singleflight coalescing.
CachePoint RunCachePoint(double theta, int key_space, int warmup,
                         int requests, int batch) {
  ThreeTierConfig config;
  config.transport = "rpc";
  config.app_cache_ttl_ms = 60 * 1000;     // no TTL churn inside the window
  config.app_cache_mb_per_shard = 24;      // hold the full working set
  config.db_users = key_space;

  ThreeTierSystem system(config);
  system.Start();

  MeshClientConfig client_config;
  client_config.server = InetAddr::Loopback(system.AppPort());
  client_config.loops = 1;
  client_config.channels_per_loop = 1;
  client_config.channel.max_inflight = 256;
  MeshClient client(client_config);
  client.Start();

  Rng rng(0xC0FFEE + static_cast<uint64_t>(theta * 100));
  ZipfGenerator zipf(static_cast<uint64_t>(key_space), theta);
  const size_t view_user = InteractionIndex("ViewUserInfo");
  ResponseCache* cache = system.app_cache();

  CachePoint out;
  out.theta = theta;
  uint64_t hits_base = 0;
  uint64_t misses_base = 0;
  int64_t start_ns = 0;
  for (int issued = 0; issued < warmup + requests; issued += batch) {
    if (issued >= warmup && start_ns == 0) {
      hits_base = cache->Hits();
      misses_base = cache->Misses();
      start_ns = NowNanos();
    }
    const size_t n = static_cast<size_t>(
        std::min(batch, warmup + requests - issued));
    std::vector<int> users(n);
    for (size_t i = 0; i < n; ++i) {
      users[i] = static_cast<int>(zipf.Next(rng));
    }
    FanoutOptions options;
    options.policy = FanoutPolicy::kBestEffort;
    const FanoutResult fr = FanoutCallSync(
        n,
        [&](size_t i, RpcCallback done) {
          RenderParams p;
          p.index = view_user;
          p.user = users[i];
          client.Call(kAppMethodRender, EncodeRenderPayload(p), {},
                      std::move(done));
        },
        options);
    if (start_ns != 0) {
      out.requests += n;
      out.errors += fr.failed;
    }
  }
  const double elapsed =
      static_cast<double>(NowNanos() - start_ns) / 1e9;

  out.hits = cache->Hits() - hits_base;
  out.misses = cache->Misses() - misses_base;
  const uint64_t lookups = out.hits + out.misses;
  out.hit_rate = lookups ? static_cast<double>(out.hits) / lookups : 0.0;
  out.singleflight_waits = cache->SingleflightWaits();
  out.evictions = cache->Evictions();
  out.entries = cache->EntryCount();
  out.bytes = cache->TotalBytes();
  out.throughput =
      elapsed > 0 ? static_cast<double>(out.requests) / elapsed : 0.0;

  client.Stop();
  system.Stop();
  return out;
}

}  // namespace

int main() {
  CalibrateCpuBurn();
  PrintHeader(
      "micro_mesh: async service mesh vs sync inter-tier chain (3-tier "
      "RUBBoS) + app-tier response cache vs Zipf skew");

  const double seconds = BenchSeconds(3.0);
  std::vector<int> user_counts = {1000, 2500};
  std::vector<double> thetas = {0.0, 0.8, 1.0, 1.2};
  int cache_key_space = 20000;
  int cache_requests = 16000;
  if (BenchQuickMode()) {
    user_counts = {1500};
    thetas = {1.0};
    cache_key_space = 10000;
    cache_requests = 10000;
  }

  const struct {
    const char* label;
    const char* transport;
    int fanout;
    int cache_ttl_ms;
  } systems[] = {
      {"sync", "sync", 1, 0},        {"rpc fo=1", "rpc", 1, 0},
      {"rpc fo=2", "rpc", 2, 0},     {"rpc fo=4", "rpc", 4, 0},
      {"rpc fo=2+cache", "rpc", 2, 200},
  };

  TablePrinter table_a({"users", "system", "tput_req_s", "p50_ms", "p99_ms",
                        "tail_amp", "web_req", "app_req", "db_req",
                        "app_mux_peak", "db_mux_peak", "hit_rate", "errors"});
  std::vector<TierPoint> tier_points;
  double sync_p99_at_max = 0.0;
  double best_rpc_p99_at_max = 0.0;
  const int max_users = *std::max_element(user_counts.begin(),
                                          user_counts.end());
  for (int users : user_counts) {
    for (const auto& sys : systems) {
      const TierPoint p = RunTierPoint(sys.label, sys.transport, sys.fanout,
                                       sys.cache_ttl_ms, users, seconds);
      tier_points.push_back(p);
      if (users == max_users) {
        if (p.fanout == 0) {
          sync_p99_at_max = p.p99_ms;
        } else if (best_rpc_p99_at_max == 0.0 ||
                   p.p99_ms < best_rpc_p99_at_max) {
          best_rpc_p99_at_max = p.p99_ms;
        }
      }
      table_a.AddRow({TablePrinter::Int(users), p.system,
                      TablePrinter::Num(p.throughput, 1),
                      TablePrinter::Num(p.p50_ms, 1),
                      TablePrinter::Num(p.p99_ms, 1),
                      TablePrinter::Num(p.tail_amp, 1),
                      TablePrinter::Int(static_cast<int64_t>(p.web_requests)),
                      TablePrinter::Int(static_cast<int64_t>(p.app_requests)),
                      TablePrinter::Int(static_cast<int64_t>(p.db_requests)),
                      TablePrinter::Int(
                          static_cast<int64_t>(p.app_inflight_peak)),
                      TablePrinter::Int(
                          static_cast<int64_t>(p.db_inflight_peak)),
                      TablePrinter::Num(p.hit_rate, 2),
                      TablePrinter::Int(static_cast<int64_t>(p.errors))});
    }
  }
  table_a.Print();
  const bool async_beats_sync =
      best_rpc_p99_at_max > 0.0 && best_rpc_p99_at_max < sync_p99_at_max;
  std::printf("\nasync_beats_sync_p99 (at %d users): %s (sync %.1f ms vs "
              "best rpc %.1f ms)\n",
              max_users, async_beats_sync ? "true" : "false", sync_p99_at_max,
              best_rpc_p99_at_max);

  TablePrinter table_b({"theta", "requests", "hit_rate", "hits", "misses",
                        "sf_waits", "evictions", "entries", "cache_mb",
                        "tput_req_s", "errors"});
  std::vector<CachePoint> cache_points;
  for (double theta : thetas) {
    const CachePoint p = RunCachePoint(theta, cache_key_space,
                                       /*warmup=*/cache_requests,
                                       cache_requests, /*batch=*/64);
    cache_points.push_back(p);
    table_b.AddRow(
        {TablePrinter::Num(p.theta, 1),
         TablePrinter::Int(static_cast<int64_t>(p.requests)),
         TablePrinter::Num(p.hit_rate, 3),
         TablePrinter::Int(static_cast<int64_t>(p.hits)),
         TablePrinter::Int(static_cast<int64_t>(p.misses)),
         TablePrinter::Int(static_cast<int64_t>(p.singleflight_waits)),
         TablePrinter::Int(static_cast<int64_t>(p.evictions)),
         TablePrinter::Int(static_cast<int64_t>(p.entries)),
         TablePrinter::Num(static_cast<double>(p.bytes) / (1024.0 * 1024.0),
                           2),
         TablePrinter::Num(p.throughput, 0),
         TablePrinter::Int(static_cast<int64_t>(p.errors))});
  }
  table_b.Print();
  double zipf1_hit_rate = 0.0;
  for (const CachePoint& p : cache_points) {
    if (p.theta == 1.0) zipf1_hit_rate = p.hit_rate;
  }
  std::printf("\ncache_hit_rate_zipf1: %.3f (target >= 0.80)\n",
              zipf1_hit_rate);

  FILE* f = std::fopen("BENCH_mesh.json", "w");
  if (f) {
    std::fprintf(f, "{\"bench\":\"micro_mesh\",\n \"transport_points\":[\n");
    for (size_t i = 0; i < tier_points.size(); ++i) {
      const TierPoint& p = tier_points[i];
      std::fprintf(
          f,
          "  {\"system\":\"%s\",\"users\":%d,\"fanout\":%d,\"cache\":%s,"
          "\"throughput_rps\":%.1f,\"p50_ms\":%.2f,\"p99_ms\":%.2f,"
          "\"tail_amp\":%.2f,\"errors\":%llu,"
          "\"web_requests\":%llu,\"app_requests\":%llu,\"db_requests\":%llu,"
          "\"app_inflight_peak\":%llu,\"db_inflight_peak\":%llu,"
          "\"fanout_calls\":%llu,\"partial_failures\":%llu,"
          "\"reconnects\":%llu,\"cache_hit_rate\":%.4f}%s\n",
          p.system.c_str(), p.users, p.fanout, p.cache ? "true" : "false",
          p.throughput, p.p50_ms, p.p99_ms, p.tail_amp,
          static_cast<unsigned long long>(p.errors),
          static_cast<unsigned long long>(p.web_requests),
          static_cast<unsigned long long>(p.app_requests),
          static_cast<unsigned long long>(p.db_requests),
          static_cast<unsigned long long>(p.app_inflight_peak),
          static_cast<unsigned long long>(p.db_inflight_peak),
          static_cast<unsigned long long>(p.fanout_calls),
          static_cast<unsigned long long>(p.partial_failures),
          static_cast<unsigned long long>(p.reconnects), p.hit_rate,
          i + 1 < tier_points.size() ? "," : "");
    }
    std::fprintf(f, " ],\n \"cache_points\":[\n");
    for (size_t i = 0; i < cache_points.size(); ++i) {
      const CachePoint& p = cache_points[i];
      std::fprintf(
          f,
          "  {\"theta\":%.2f,\"requests\":%llu,\"hit_rate\":%.4f,"
          "\"hits\":%llu,\"misses\":%llu,\"singleflight_waits\":%llu,"
          "\"evictions\":%llu,\"entries\":%llu,\"cache_bytes\":%llu,"
          "\"throughput_rps\":%.0f,\"errors\":%llu}%s\n",
          p.theta, static_cast<unsigned long long>(p.requests), p.hit_rate,
          static_cast<unsigned long long>(p.hits),
          static_cast<unsigned long long>(p.misses),
          static_cast<unsigned long long>(p.singleflight_waits),
          static_cast<unsigned long long>(p.evictions),
          static_cast<unsigned long long>(p.entries),
          static_cast<unsigned long long>(p.bytes), p.throughput,
          static_cast<unsigned long long>(p.errors),
          i + 1 < cache_points.size() ? "," : "");
    }
    std::fprintf(f,
                 " ],\n \"async_beats_sync_p99\":%s,"
                 "\"cache_hit_rate_zipf1\":%.4f}\n",
                 async_beats_sync ? "true" : "false", zipf1_hit_rate);
    std::fclose(f);
    std::printf("\nwrote BENCH_mesh.json\n");
  }

  std::printf(
      "\nExpected shape: at saturating users the sync chain queues whole\n"
      "requests on blocked pool connections while the mesh multiplexes\n"
      "them (app/db mux_peak >> 1), so the rpc rows win p99. Fan-out cuts\n"
      "p50 (the plan's DB round trips run in parallel) but amplifies the\n"
      "tail per fragment count (tail_amp). The cache row converts app CPU\n"
      "+ DB work into shared-body hits. Part B: hit rate climbs with\n"
      "skew; >= 0.80 at theta = 1.0.\n");
  return 0;
}
