// Table I: OS context switches of the async vs the sync server at
// workload concurrency 8, for the three response sizes. The paper reports
// the async server switching 2.5x–14x more (e.g. 40 vs 16 per interval at
// 0.1 KB). We report switches per request and per second, measured from
// /proc for the server's threads only.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  PrintHeader(
      "Table I: context switches, TomcatAsync vs TomcatSync (concurrency 8)");

  const double seconds = BenchSeconds(1.0);
  const size_t sizes[] = {kSmall, kMedium, kLarge};

  TablePrinter table({"resp_size", "async_cs_per_req", "batched_cs_per_req",
                      "sync_cs_per_req", "async/sync", "async_cs_per_sec",
                      "sync_cs_per_sec"});

  for (size_t size : sizes) {
    BenchPoint pa =
        MakePoint(ServerArchitecture::kReactorPool, size, 8, seconds);
    const BenchPointResult ra = RunBenchPoint(pa);

    // The same async server with batched handoff (dispatch_batch=8): the
    // PR-4 lever, shown next to the paper's baseline columns.
    BenchPoint pb =
        MakePoint(ServerArchitecture::kReactorPool, size, 8, seconds);
    pb.server.dispatch_batch = 8;
    const BenchPointResult rb = RunBenchPoint(pb);

    BenchPoint ps =
        MakePoint(ServerArchitecture::kThreadPerConn, size, 8, seconds);
    const BenchPointResult rs = RunBenchPoint(ps);

    const double a = ra.CtxSwitchesPerRequest();
    const double b = rb.CtxSwitchesPerRequest();
    const double s = rs.CtxSwitchesPerRequest();
    table.AddRow({SizeLabel(size), TablePrinter::Num(a, 2),
                  TablePrinter::Num(b, 2), TablePrinter::Num(s, 2),
                  TablePrinter::Num(s > 0 ? a / s : 0, 1),
                  TablePrinter::Num(ra.activity.CtxSwitchesPerSec(), 0),
                  TablePrinter::Num(rs.activity.CtxSwitchesPerSec(), 0)});
  }

  table.Print();
  table.PrintCsv("tab01");
  std::printf(
      "\nExpected shape (paper): the asynchronous server context-switches\n"
      "several times more than the thread-based one at equal concurrency.\n"
      "The batched column shows dispatch_batch=8 recovering part of that\n"
      "gap (see micro_dispatch_batch for the full sweep).\n");
  return 0;
}
