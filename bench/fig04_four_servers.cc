// Figure 4: the four simplified servers under increasing workload
// concurrency — throughput for 0.1/10/100 KB responses (subfigures a–c)
// and server context switches (subfigure d). The paper's findings:
//   * throughput is negatively correlated with context-switch frequency;
//   * sTomcat-Async-Fix beats sTomcat-Async (~22% at concurrency 16);
//   * SingleT-Async wins at small responses but loses badly at 100 KB
//     (the write-spin problem).
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  const double seconds = BenchSeconds(0.8);
  std::vector<int> concurrencies = {1, 4, 16, 64, 128};
  if (BenchQuickMode()) concurrencies = {16};

  const ServerArchitecture archs[] = {
      ServerArchitecture::kReactorPool,
      ServerArchitecture::kReactorPoolFix,
      ServerArchitecture::kThreadPerConn,
      ServerArchitecture::kSingleThread,
  };
  const size_t sizes[] = {kSmall, kMedium, kLarge};

  for (size_t size : sizes) {
    PrintHeader("Figure 4 (a-c): throughput [req/s], response size " +
                SizeLabel(size));
    TablePrinter table({"concurrency", "sTomcat-Async", "sTomcat-Async-Fix",
                        "sTomcat-Sync", "SingleT-Async"});
    TablePrinter cs_table({"concurrency", "sTomcat-Async",
                           "sTomcat-Async-Fix", "sTomcat-Sync",
                           "SingleT-Async"});
    for (int conc : concurrencies) {
      std::vector<std::string> tput_row = {TablePrinter::Int(conc)};
      std::vector<std::string> cs_row = {TablePrinter::Int(conc)};
      for (ServerArchitecture arch : archs) {
        const BenchPointResult r =
            RunBenchPoint(MakePoint(arch, size, conc, seconds));
        tput_row.push_back(TablePrinter::Num(r.Throughput(), 0));
        cs_row.push_back(
            TablePrinter::Num(r.activity.CtxSwitchesPerSec(), 0));
      }
      table.AddRow(tput_row);
      cs_table.AddRow(cs_row);
    }
    table.Print();
    table.PrintCsv("fig04_tput_" + SizeLabel(size));
    if (size == kSmall) {
      PrintHeader(
          "Figure 4 (d): server context switches per second, size " +
          SizeLabel(size));
      cs_table.Print();
      cs_table.PrintCsv("fig04_cs_" + SizeLabel(size));
    }
  }

  // The paper's 100 KB subfigure shows SingleT-Async dropping well below
  // sTomcat-Sync. That write-spin penalty depends on the testbed link's
  // ACK delay, which bare loopback lacks; re-run the 100 KB row behind an
  // emulated 1 ms LAN RTT to expose it (see DESIGN.md substitutions).
  PrintHeader(
      "Figure 4 (c'): throughput [req/s], 100KB with 1ms LAN RTT emulated");
  TablePrinter lan_table({"concurrency", "sTomcat-Async",
                          "sTomcat-Async-Fix", "sTomcat-Sync",
                          "SingleT-Async"});
  for (int conc : concurrencies) {
    std::vector<std::string> row = {TablePrinter::Int(conc)};
    for (ServerArchitecture arch : archs) {
      BenchPoint p = MakePoint(arch, kLarge, conc, seconds);
      p.latency_ms = 1.0;
      row.push_back(
          TablePrinter::Num(RunBenchPoint(p).Throughput(), 0));
    }
    lan_table.AddRow(row);
  }
  lan_table.Print();
  lan_table.PrintCsv("fig04_tput_100KB_lan");

  std::printf(
      "\nExpected shape (paper): throughput ordering inverse to context\n"
      "switches; Fix > Async; SingleT best at 0.1KB, worst at 100KB (the\n"
      "latter visible in the LAN-RTT table).\n");
  return 0;
}
