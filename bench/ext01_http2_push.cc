// Extension 1: HTTP/2-style server push (Section IV's motivating scenario
// for unpredictable response sizes: "the response of a typical news
// website can easily reach tens of megabytes... all these content can be
// pushed back by answering one client request").
//
// One request type (/bench?...&push=N) balloons from a light page to a
// multi-hundred-KB push train as N grows. Static architectures commit to
// one write path; HybridNetty reclassifies the type at the size where it
// starts to write-spin.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  const double seconds = BenchSeconds(1.0);
  std::vector<int> push_counts = {0, 1, 2, 4, 8, 16};
  if (BenchQuickMode()) push_counts = {0, 4, 16};

  PrintHeader(
      "Extension 1: HTTP/2-style push — response grows from 2KB page to "
      "page + N x 16KB pushed resources (1ms LAN RTT, concurrency 50)");
  TablePrinter table({"pushed", "total_resp", "SingleT-Async", "NettyServer",
                      "HybridNetty", "hybrid_path"});

  for (int push : push_counts) {
    char target[96];
    std::snprintf(target, sizeof(target),
                  "/bench?size=2048&us=40&push=%d&push_kb=16", push);
    const size_t total = 2048 + static_cast<size_t>(push) * 16 * 1024;

    double tput[3] = {0, 0, 0};
    std::string hybrid_path = "?";
    const ServerArchitecture archs[] = {ServerArchitecture::kSingleThread,
                                        ServerArchitecture::kMultiLoop,
                                        ServerArchitecture::kHybrid};
    for (int a = 0; a < 3; ++a) {
      BenchPoint p;
      p.server.architecture = archs[a];
      p.concurrency = 50;
      p.measure_sec = seconds;
      p.latency_ms = 1.0;
      p.targets = {{target, 1.0}};
      const BenchPointResult r = RunBenchPoint(p);
      tput[a] = r.Throughput();
      if (archs[a] == ServerArchitecture::kHybrid) {
        hybrid_path = r.counters.heavy_path_responses >
                              r.counters.light_path_responses
                          ? "heavy"
                          : "light";
      }
    }
    table.AddRow({TablePrinter::Int(push), SizeLabel(total),
                  TablePrinter::Num(tput[0], 0), TablePrinter::Num(tput[1], 0),
                  TablePrinter::Num(tput[2], 0), hybrid_path});
  }

  table.Print();
  table.PrintCsv("ext01");
  std::printf(
      "\nExpected: the hybrid tracks SingleT-Async while the push train\n"
      "fits the send buffer, flips the type to the heavy path once it\n"
      "write-spins, and then tracks NettyServer — no manual tuning.\n");
  return 0;
}
