// Ablation A: Netty's writeSpin cap (default 16). Sweeps the cap for
// NettyServer serving 100 KB responses at concurrency 100, with and
// without latency. A cap of 0 means "flush until EAGAIN" (no yielding to
// other connections beyond kernel-buffer pressure).
//
// Why it matters: the cap is the design knob behind the paper's Section
// V-A claim that Netty's write optimization trades per-message overhead
// for loop fairness. Too small → excessive re-scheduling; unbounded →
// the loop can be monopolized like SingleT-Async.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  const double seconds = BenchSeconds(1.0);
  std::vector<int> caps = {1, 2, 4, 8, 16, 64, 0};
  if (BenchQuickMode()) caps = {1, 16, 0};
  std::vector<double> latencies = {0.0, 2.0};
  if (BenchQuickMode()) latencies = {0.0};

  for (double latency : latencies) {
    PrintHeader("Ablation A: writeSpin cap sweep (NettyServer, 100KB, "
                "concurrency 100, latency " +
                TablePrinter::Num(latency, 0) + "ms)");
    TablePrinter table({"spin_cap", "throughput", "mean_rt_ms",
                        "writes_per_resp", "capped_flushes"});
    for (int cap : caps) {
      BenchPoint p =
          MakePoint(ServerArchitecture::kMultiLoop, kLarge, 100, seconds);
      p.server.write_spin_cap = cap;
      p.latency_ms = latency;
      const BenchPointResult r = RunBenchPoint(p);
      table.AddRow({cap == 0 ? "unbounded" : TablePrinter::Int(cap),
                    TablePrinter::Num(r.Throughput(), 0),
                    TablePrinter::Num(r.MeanLatencyMs(), 1),
                    TablePrinter::Num(r.WritesPerResponse(), 1),
                    TablePrinter::Int(static_cast<int64_t>(
                        r.counters.spin_capped_flushes))});
    }
    table.Print();
    table.PrintCsv("abl01");
  }
  return 0;
}
