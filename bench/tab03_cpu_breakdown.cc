// Table III: user vs system CPU split at concurrency 100 as the response
// size grows from 0.1 KB to 100 KB. The paper: user-CPU share rises from
// 55%→80% for the thread-based server but 58%→92% for SingleT-Async —
// the write-spin burns user-space CPU in futile socket.write() calls.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  PrintHeader(
      "Table III: CPU breakdown at concurrency 100 (user% / sys% of process "
      "CPU over the window; getrusage — includes the in-process client, "
      "identical across the compared rows)");

  const double seconds = BenchSeconds(1.2);
  const ServerArchitecture archs[] = {ServerArchitecture::kThreadPerConn,
                                      ServerArchitecture::kSingleThread};
  const size_t sizes[] = {kSmall, kLarge};

  TablePrinter table({"server_type", "resp_size", "throughput", "user_pct",
                      "sys_pct", "writes_per_resp"});

  for (ServerArchitecture arch : archs) {
    for (size_t size : sizes) {
      const BenchPointResult r =
          RunBenchPoint(MakePoint(arch, size, 100, seconds));
      table.AddRow({ArchitectureName(arch), SizeLabel(size),
                    TablePrinter::Num(r.Throughput(), 0),
                    TablePrinter::Num(100.0 * r.ProcessUserShare(), 0),
                    TablePrinter::Num(100.0 * r.ProcessSystemShare(), 0),
                    TablePrinter::Num(r.WritesPerResponse(), 1)});
    }
  }

  table.Print();
  table.PrintCsv("tab03");
  std::printf(
      "\nExpected shape (paper): growing the response to 100KB raises the\n"
      "user-CPU share more for SingleT-Async than for sTomcat-Sync.\n");
  return 0;
}
