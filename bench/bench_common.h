// Helpers shared by the figure/table bench binaries.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "client/bench_runner.h"
#include "metrics/report.h"

namespace hynet::benchx {

inline std::string SizeLabel(size_t bytes) {
  char buf[32];
  if (bytes < 1024) {
    std::snprintf(buf, sizeof(buf), "%.1fKB",
                  static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%zuKB", bytes / 1024);
  }
  return buf;
}

// The paper's three representative response sizes.
inline constexpr size_t kSmall = 102;           // 0.1 KB
inline constexpr size_t kMedium = 10 * 1024;    // 10 KB
inline constexpr size_t kLarge = 100 * 1024;    // 100 KB

// Builds a single-target BenchPoint for the standard workload.
inline BenchPoint MakePoint(ServerArchitecture arch, size_t size,
                            int concurrency, double measure_sec) {
  BenchPoint p;
  p.server.architecture = arch;
  p.concurrency = concurrency;
  p.measure_sec = measure_sec;
  p.targets = {{BenchTarget(size, DefaultCpuUs(size)), 1.0}};
  return p;
}

}  // namespace hynet::benchx
