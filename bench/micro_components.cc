// Component micro-benchmarks (google-benchmark): the building blocks whose
// costs explain the macro results — HTTP parse/serialize, buffer ops,
// pipeline dispatch (Netty overhead), queue handoff (reactor-pool
// dispatch), classifier lookup (hybrid fast path), histogram record, and
// Zipf sampling.
#include <benchmark/benchmark.h>

#include "common/bytes.h"
#include "common/histogram.h"
#include "common/queue.h"
#include "common/rng.h"
#include "core/classifier.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "runtime/outbound_buffer.h"
#include "runtime/pipeline.h"

namespace hynet {
namespace {

void BM_HttpRequestParse(benchmark::State& state) {
  const std::string request =
      BuildGetRequest("/bench?size=102400&us=50&extra=param");
  HttpRequestParser parser;
  ByteBuffer buf;
  for (auto _ : state) {
    buf.Append(request);
    const ParseStatus st = parser.Parse(buf);
    benchmark::DoNotOptimize(st);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HttpRequestParse);

void BM_HttpResponseSerialize(benchmark::State& state) {
  HttpResponse resp;
  resp.body.assign(static_cast<size_t>(state.range(0)), 'x');
  resp.SetHeader("Content-Type", "application/octet-stream");
  for (auto _ : state) {
    ByteBuffer out;
    SerializeResponse(resp, out);
    benchmark::DoNotOptimize(out.ReadableBytes());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HttpResponseSerialize)->Arg(102)->Arg(10 * 1024)->Arg(100 * 1024);

void BM_ByteBufferAppendConsume(benchmark::State& state) {
  ByteBuffer buf;
  const std::string chunk(4096, 'b');
  for (auto _ : state) {
    buf.Append(chunk);
    buf.Consume(chunk.size());
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ByteBufferAppendConsume);

// Cost of one message through the Netty-style pipeline (boxing + virtual
// hops) versus a direct function call — the "optimization overhead" of
// Figure 9(b) in isolation.
void BM_PipelineDispatch(benchmark::State& state) {
  struct PassThrough final : ChannelHandler {};
  ChannelPipeline pipeline;
  pipeline.AddLast(std::make_shared<PassThrough>());
  pipeline.AddLast(std::make_shared<PassThrough>());
  size_t sunk = 0;
  pipeline.SetOutboundSink([&](Payload payload) { sunk += payload.size(); });
  for (auto _ : state) {
    pipeline.Write(std::any(std::string("HTTP/1.1 200 OK\r\n\r\n")));
  }
  benchmark::DoNotOptimize(sunk);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineDispatch);

void BM_DirectWriteCall(benchmark::State& state) {
  size_t sunk = 0;
  auto sink = [&](std::string bytes) { sunk += bytes.size(); };
  for (auto _ : state) {
    sink(std::string("HTTP/1.1 200 OK\r\n\r\n"));
  }
  benchmark::DoNotOptimize(sunk);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirectWriteCall);

void BM_BlockingQueueHandoff(benchmark::State& state) {
  // Single-threaded push/pop: measures queue mechanics without the
  // scheduler (the scheduler cost is what tab01 measures end to end).
  BlockingQueue<int> queue;
  for (auto _ : state) {
    queue.Push(1);
    benchmark::DoNotOptimize(queue.Pop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockingQueueHandoff);

void BM_ClassifierLookup(benchmark::State& state) {
  RequestClassifier classifier;
  std::vector<std::string> keys;
  for (int i = 0; i < 64; ++i) {
    keys.push_back("/bench?size=" + std::to_string(i));
    classifier.Update(keys.back(), i % 2 == 0 ? PathCategory::kLight
                                              : PathCategory::kHeavy);
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Lookup(keys[i++ & 63]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifierLookup);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram hist;
  int64_t v = 1;
  for (auto _ : state) {
    hist.Record(v);
    v = (v * 2862933555777941757ULL + 3037000493ULL) % 1000000000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_ZipfSample(benchmark::State& state) {
  Rng rng(7);
  ZipfGenerator zipf(100000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfSample);

void BM_OutboundBufferAddFlushNoSocket(benchmark::State& state) {
  // Bookkeeping-only cost: Add + accounting (flush against /dev/null-like
  // fd is not meaningful; the syscall side is covered by the macro
  // benches). Measures the allocation/queue cost Netty pays per message.
  WriteStats stats;
  for (auto _ : state) {
    OutboundBuffer buf(16);
    buf.Add(std::string(128, 'x'));
    benchmark::DoNotOptimize(buf.PendingBytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OutboundBufferAddFlushNoSocket);

}  // namespace
}  // namespace hynet

BENCHMARK_MAIN();
