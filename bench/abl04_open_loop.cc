// Ablation D: closed-loop vs open-loop measurement of the write-spin
// penalty. The paper's JMeter workload is closed-loop (each emulated user
// waits for its response), which *understates* the damage a blocked
// single-threaded server does: arrivals pause whenever the server stalls.
// An open-loop (Poisson) workload keeps arriving, so queueing delay behind
// the glued thread lands in the latency distribution.
//
// Both servers are offered the SAME arrival rate (half of the hybrid's
// closed-loop capacity): sustainable for the hybrid, beyond the naive
// spin-writer's capacity.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  const double seconds = BenchSeconds(1.5);

  PrintHeader(
      "Ablation D: closed vs open loop — SingleT-Async vs HybridNetty, "
      "5% heavy mix, 1ms LAN RTT");

  const std::vector<WeightedTarget> mix = {
      {BenchTarget(kSmall, DefaultCpuUs(kSmall)), 0.95},
      {BenchTarget(kLarge, DefaultCpuUs(kLarge)), 0.05},
  };

  auto run = [&](ServerArchitecture arch, double open_rate) {
    BenchPoint p;
    p.server.architecture = arch;
    p.concurrency = 50;
    p.measure_sec = seconds;
    p.latency_ms = 1.0;
    p.targets = mix;
    p.open_loop_rate = open_rate;
    return RunBenchPoint(p);
  };

  // Pass 1 (closed loop) fixes the common open-loop rate.
  const BenchPointResult closed_single =
      run(ServerArchitecture::kSingleThread, 0);
  const BenchPointResult closed_hybrid = run(ServerArchitecture::kHybrid, 0);
  const double rate = closed_hybrid.Throughput() * 0.5;

  TablePrinter table({"mode", "architecture", "offered_rps", "completed_rps",
                      "p50_ms", "p99_ms", "queued"});
  auto add = [&](const char* mode, ServerArchitecture arch,
                 const BenchPointResult& r, double offered) {
    table.AddRow(
        {mode, ArchitectureName(arch),
         offered > 0 ? TablePrinter::Num(offered, 0) : std::string("-"),
         TablePrinter::Num(r.Throughput(), 0),
         TablePrinter::Num(
             static_cast<double>(r.load.latency.Percentile(0.5)) / 1e6, 2),
         TablePrinter::Num(
             static_cast<double>(r.load.latency.Percentile(0.99)) / 1e6, 2),
         offered > 0
             ? TablePrinter::Int(static_cast<int64_t>(r.load.queued_arrivals))
             : std::string("-")});
  };

  add("closed", ServerArchitecture::kSingleThread, closed_single, 0);
  add("closed", ServerArchitecture::kHybrid, closed_hybrid, 0);
  const BenchPointResult open_single =
      run(ServerArchitecture::kSingleThread, rate);
  add("open", ServerArchitecture::kSingleThread, open_single, rate);
  const BenchPointResult open_hybrid = run(ServerArchitecture::kHybrid, rate);
  add("open", ServerArchitecture::kHybrid, open_hybrid, rate);

  table.Print();
  table.PrintCsv("abl04");
  std::printf(
      "\nExpected: at the same offered rate the spin-writer saturates —\n"
      "arrivals queue and its tail latency explodes — while the hybrid\n"
      "absorbs the load at closed-loop-like latency.\n");
  return 0;
}
