// Figure 6: kernel send-buffer autotuning vs a fixed large SO_SNDBUF for
// SingleT-Async serving 100 KB responses. The paper: autotuning sizes the
// buffer for link utilization (Bandwidth-Delay Product), not for the
// application's response size, so the async server still write-spins; a
// fixed 100 KB buffer avoids the spin. The gap widens with network
// latency.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  PrintHeader(
      "Figure 6: TCP send buffer autotuning vs fixed 100KB "
      "(SingleT-Async, 100KB responses, concurrency 100)");

  const double seconds = BenchSeconds(1.2);
  const double latencies_ms[] = {0.0, 5.0};

  TablePrinter table({"latency_ms", "sndbuf", "throughput",
                      "writes_per_resp", "mean_rt_ms"});

  for (double latency : latencies_ms) {
    struct Variant {
      const char* label;
      int sndbuf;
    };
    // The paper's testbed (2018-era kernels) observed the autotuner keep
    // the buffer near the link BDP — too small for a 100 KB response, so
    // the async server still write-spun. Modern kernels grow wmem up to
    // tcp_wmem[2] regardless, so autotune behaves like a large fixed
    // buffer here; the fixed-16KB row shows the spin-inducing regime the
    // paper's autotune row demonstrated (see EXPERIMENTS.md).
    const Variant variants[] = {{"fixed-16KB", 16 * 1024},
                                {"autotune", 0},
                                {"fixed-100KB", 100 * 1024}};
    for (const Variant& v : variants) {
      BenchPoint p = MakePoint(ServerArchitecture::kSingleThread, kLarge,
                               100, seconds);
      p.server.snd_buf_bytes = v.sndbuf;
      p.latency_ms = latency;
      const BenchPointResult r = RunBenchPoint(p);
      table.AddRow({TablePrinter::Num(latency, 1), v.label,
                    TablePrinter::Num(r.Throughput(), 0),
                    TablePrinter::Num(r.WritesPerResponse(), 1),
                    TablePrinter::Num(r.MeanLatencyMs(), 1)});
    }
  }

  table.Print();
  table.PrintCsv("fig06");
  std::printf(
      "\nExpected shape: a send buffer smaller than the response\n"
      "(fixed-16KB) write-spins and collapses under latency; a buffer\n"
      "sized to the response does not. The paper's kernel kept the\n"
      "autotuned buffer in the first regime; modern kernels land it in\n"
      "the second (divergence documented in EXPERIMENTS.md).\n");
  return 0;
}
