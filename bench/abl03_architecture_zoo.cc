// Ablation C: the full architecture taxonomy of Section II-A side by side —
// including the two designs the paper discusses but does not benchmark
// (SEDA-style staged pipeline, N-copy single-threaded deployment) — under
// the small-response and large-response regimes.
//
// Expected: staged ≈ sTomcat-Async (same 4 handoffs, split across pools);
// N-copy ≈ SingleT-Async on one core (the deployment only helps with more
// cores); the hybrid at or near the top in both regimes.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  const double seconds = BenchSeconds(0.8);

  const ServerArchitecture archs[] = {
      ServerArchitecture::kThreadPerConn,
      ServerArchitecture::kReactorPool,
      ServerArchitecture::kReactorPoolFix,
      ServerArchitecture::kStaged,
      ServerArchitecture::kSingleThread,
      ServerArchitecture::kSingleThreadNCopy,
      ServerArchitecture::kMultiLoop,
      ServerArchitecture::kHybrid,
  };

  const struct {
    size_t size;
    double latency_ms;
    const char* label;
  } regimes[] = {
      {kSmall, 0.0, "0.1KB responses, no latency"},
      {kLarge, 1.0, "100KB responses, 1ms LAN RTT"},
  };

  for (const auto& regime : regimes) {
    PrintHeader(std::string("Ablation C: architecture zoo — ") +
                regime.label + " (concurrency 64)");
    TablePrinter table({"architecture", "throughput", "mean_rt_ms",
                        "switches_per_req", "ctx_per_sec"});
    for (ServerArchitecture arch : archs) {
      BenchPoint p = MakePoint(arch, regime.size, 64, seconds);
      p.latency_ms = regime.latency_ms;
      const BenchPointResult r = RunBenchPoint(p);
      table.AddRow({ArchitectureName(arch),
                    TablePrinter::Num(r.Throughput(), 0),
                    TablePrinter::Num(r.MeanLatencyMs(), 1),
                    TablePrinter::Num(r.LogicalSwitchesPerRequest(), 1),
                    TablePrinter::Num(r.activity.CtxSwitchesPerSec(), 0)});
    }
    table.Print();
    table.PrintCsv("abl03");
  }
  return 0;
}
