// Table II: logical (user-space) context switches needed to process one
// request, by architecture. Measured from the servers' instrumented
// dispatch counters, which increment at exactly the handoff points of
// Figure 3:
//   sTomcat-Async      4  (reactor→worker, worker→reactor, reactor→worker,
//                          worker→reactor)
//   sTomcat-Async-Fix  2  (reactor→worker, worker→reactor)
//   sTomcat-Sync       0
//   SingleT-Async      0
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  PrintHeader("Table II: logical context switches per request");

  const double seconds = BenchSeconds(0.6);
  struct Row {
    ServerArchitecture arch;
    int expected;
  };
  const Row rows[] = {
      {ServerArchitecture::kReactorPool, 4},
      {ServerArchitecture::kReactorPoolFix, 2},
      {ServerArchitecture::kThreadPerConn, 0},
      {ServerArchitecture::kSingleThread, 0},
  };

  TablePrinter table({"server_type", "measured_per_req", "paper"});
  for (const Row& row : rows) {
    BenchPoint p = MakePoint(row.arch, kSmall, 8, seconds);
    const BenchPointResult r = RunBenchPoint(p);
    table.AddRow({ArchitectureName(row.arch),
                  TablePrinter::Num(r.LogicalSwitchesPerRequest(), 2),
                  TablePrinter::Int(row.expected)});
  }

  table.Print();
  table.PrintCsv("tab02");
  return 0;
}
