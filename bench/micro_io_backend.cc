// micro_io_backend: syscalls per request, epoll readiness engine vs the
// io_uring completion engine, on the single-thread server.
//
// The epoll loop pays one epoll_wait per iteration plus one read() and
// one write()/writev() per request; the completion engine rides reads and
// writes on SQEs, so a whole loop iteration's worth of I/O costs a single
// io_uring_enter — and when CQEs are already pending, not even that. The
// syscall model counted here (uniform across both engines):
//
//   syscalls/req = (wait_syscalls + wakeup_writes + read_calls
//                   + write_calls) / requests
//
// where wait_syscalls is loop_iterations (one epoll_wait each) on epoll
// and uring_submit_batches (every io_uring_enter, submit or wait) on
// uring. On uring, read/write counters stay zero by construction: those
// ops are SQEs, not syscalls. Results go to BENCH_uring.json.
//
//   ./build/bench/micro_io_backend
#include "bench_common.h"
#include "io/io_backend.h"

using namespace hynet;
using namespace hynet::benchx;

namespace {

struct PointResult {
  std::string backend;
  int concurrency = 0;
  size_t size = 0;
  double syscalls_per_req = 0.0;
  double sqes_per_batch = 0.0;
  double throughput = 0.0;
  double p99_ms = 0.0;
  bool fell_back = false;
};

PointResult RunPoint(const std::string& backend, int concurrency, size_t size,
                     double seconds) {
  BenchPoint p = MakePoint(ServerArchitecture::kSingleThread, size,
                           concurrency, seconds);
  p.server.io_backend = backend;
  const BenchPointResult r = RunBenchPoint(p);

  PointResult out;
  out.backend = backend;
  out.concurrency = concurrency;
  out.size = size;
  const bool uring = r.counters.uring_sqes_submitted > 0;
  const uint64_t waits =
      uring ? r.counters.uring_submit_batches : r.counters.loop_iterations;
  const uint64_t syscalls = waits + r.counters.wakeup_writes_issued +
                            r.counters.read_calls + r.counters.write_calls;
  out.syscalls_per_req =
      r.counters.requests_handled
          ? static_cast<double>(syscalls) /
                static_cast<double>(r.counters.requests_handled)
          : 0.0;
  out.sqes_per_batch =
      r.counters.uring_submit_batches
          ? static_cast<double>(r.counters.uring_sqes_submitted) /
                static_cast<double>(r.counters.uring_submit_batches)
          : 0.0;
  out.throughput = r.Throughput();
  out.p99_ms = r.load.latency.Percentile(0.99) / 1e6;
  out.fell_back = r.counters.uring_fallbacks > 0;
  return out;
}

}  // namespace

int main() {
  PrintHeader(
      "micro_io_backend: syscalls per request, epoll vs io_uring, "
      "single-thread server, concurrency x response size");

  if (!IoUringAvailable()) {
    std::printf("note: io_uring unavailable on this kernel — the uring rows "
                "will run the epoll fallback.\n\n");
  }

  const double seconds = BenchSeconds(1.0);
  std::vector<int> concurrencies = {8, 64, 256};
  std::vector<size_t> sizes = {1024, 100 * 1024};
  if (BenchQuickMode()) {
    concurrencies = {8, 64};
    sizes = {1024};
  }

  TablePrinter table({"conc", "size", "backend", "syscalls_per_req",
                      "vs_epoll", "sqe_per_batch", "req_per_sec", "p99_ms"});
  std::vector<PointResult> results;
  for (int conc : concurrencies) {
    for (size_t size : sizes) {
      double epoll_baseline = 0.0;
      for (const char* backend : {"epoll", "uring"}) {
        const PointResult r = RunPoint(backend, conc, size, seconds);
        results.push_back(r);
        if (r.backend == "epoll") epoll_baseline = r.syscalls_per_req;
        table.AddRow(
            {TablePrinter::Int(conc), SizeLabel(size),
             r.fell_back ? r.backend + "(fb)" : r.backend,
             TablePrinter::Num(r.syscalls_per_req, 2),
             TablePrinter::Num(r.syscalls_per_req > 0
                                   ? epoll_baseline / r.syscalls_per_req
                                   : 0.0,
                               2),
             TablePrinter::Num(r.sqes_per_batch, 1),
             TablePrinter::Num(r.throughput, 0),
             TablePrinter::Num(r.p99_ms, 2)});
      }
    }
  }
  table.Print();

  FILE* f = std::fopen("BENCH_uring.json", "w");
  if (f) {
    std::fprintf(f, "{\"bench\":\"micro_io_backend\",\"points\":[\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const PointResult& r = results[i];
      std::fprintf(f,
                   "  {\"backend\":\"%s\",\"fell_back\":%s,"
                   "\"concurrency\":%d,\"response_bytes\":%zu,"
                   "\"syscalls_per_req\":%.3f,\"sqes_per_batch\":%.2f,"
                   "\"throughput_rps\":%.1f,\"p99_ms\":%.3f}%s\n",
                   r.backend.c_str(), r.fell_back ? "true" : "false",
                   r.concurrency, r.size, r.syscalls_per_req, r.sqes_per_batch,
                   r.throughput, r.p99_ms,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_uring.json\n");
  }

  std::printf(
      "\nExpected shape: epoll pays ~3+ syscalls per request (epoll_wait\n"
      "share + read + write); the completion engine batches a whole\n"
      "iteration's SQEs into one io_uring_enter, so syscalls/request\n"
      "drops well below 1 at concurrency >= 64 (>= 20%% fewer than epoll\n"
      "at 1KB) and sqe_per_batch grows with concurrency.\n");
  return 0;
}
