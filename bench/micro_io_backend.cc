// micro_io_backend: syscalls per request across every EventLoop
// architecture and I/O plane.
//
// Four planes per architecture:
//
//   epoll        the readiness engine: one epoll_wait per iteration plus
//                one read() and one write()/writev() per request;
//   uring-ready  the uring readiness shim (uring_mode="readiness"):
//                POLL_ADD wakeups followed by the same plain read()/write()
//                — epoll with extra steps, kept as the A/B baseline;
//   uring-comp   the completion plane with zero-copy sends disabled:
//                engine-owned reads, queued SENDMSG writes, a whole
//                iteration's I/O in one io_uring_enter;
//   uring-comp-zc completion plane with SEND_ZC enabled (the default):
//                responses >= 100KB pin their buffers and skip the
//                kernel-side copy where the path allows it.
//
// The syscall model counted here (uniform across planes):
//
//   syscalls/req = (wait_syscalls + wakeup_writes + read_calls
//                   + write_calls) / requests
//
// where wait_syscalls is loop_iterations (one epoll_wait each) on the
// readiness planes and uring_submit_batches (every io_uring_enter) on the
// completion plane, where read/write counters stay zero by construction.
// Results go to BENCH_uring.json.
//
//   ./build/bench/micro_io_backend
#include <cstdlib>

#include "bench_common.h"
#include "io/io_backend.h"

using namespace hynet;
using namespace hynet::benchx;

namespace {

struct PlaneSpec {
  const char* name;
  const char* io_backend;
  const char* uring_mode;
  bool zero_copy;
};

constexpr PlaneSpec kPlanes[] = {
    {"epoll", "epoll", "", false},
    {"uring-ready", "uring", "readiness", false},
    {"uring-comp", "uring", "", false},
    {"uring-comp-zc", "uring", "", true},
};

struct ArchSpec {
  const char* name;
  ServerArchitecture arch;
};

constexpr ArchSpec kArchs[] = {
    {"single_thread", ServerArchitecture::kSingleThread},
    {"multi_loop", ServerArchitecture::kMultiLoop},
    {"reactor_pool", ServerArchitecture::kReactorPool},
    {"staged", ServerArchitecture::kStaged},
};

struct PointResult {
  std::string arch;
  std::string plane;
  int concurrency = 0;
  size_t size = 0;
  double syscalls_per_req = 0.0;
  double sqes_per_batch = 0.0;
  double throughput = 0.0;
  double p99_ms = 0.0;
  uint64_t zc_sends = 0;
  uint64_t zc_bytes = 0;
  uint64_t zc_copied = 0;
  bool fell_back = false;

  // Bytes that actually bypassed the kernel-side copy: the per-send
  // notification tells us which sends were copied after all (loopback has
  // no DMA path, so there it is typically all of them).
  uint64_t CopyAvoidedBytes() const {
    if (zc_sends == 0) return 0;
    const uint64_t copied = zc_copied < zc_sends ? zc_copied : zc_sends;
    return zc_bytes - zc_bytes * copied / zc_sends;
  }
};

PointResult RunPoint(const ArchSpec& arch, const PlaneSpec& plane,
                     int concurrency, size_t size, double seconds) {
  // The engine reads the knob at construction (server Start), so flipping
  // the environment between points selects the plane variant.
  ::setenv("HYNET_URING_ZC", plane.zero_copy ? "1" : "0", 1);

  BenchPoint p = MakePoint(arch.arch, size, concurrency, seconds);
  p.server.io_backend = plane.io_backend;
  p.server.uring_mode = plane.uring_mode;
  const BenchPointResult r = RunBenchPoint(p);

  PointResult out;
  out.arch = arch.name;
  out.plane = plane.name;
  out.concurrency = concurrency;
  out.size = size;
  const bool uring = r.counters.uring_sqes_submitted > 0;
  const uint64_t waits =
      uring ? r.counters.uring_submit_batches : r.counters.loop_iterations;
  const uint64_t syscalls = waits + r.counters.wakeup_writes_issued +
                            r.counters.read_calls + r.counters.write_calls;
  out.syscalls_per_req =
      r.counters.requests_handled
          ? static_cast<double>(syscalls) /
                static_cast<double>(r.counters.requests_handled)
          : 0.0;
  out.sqes_per_batch =
      r.counters.uring_submit_batches
          ? static_cast<double>(r.counters.uring_sqes_submitted) /
                static_cast<double>(r.counters.uring_submit_batches)
          : 0.0;
  out.throughput = r.Throughput();
  out.p99_ms = r.load.latency.Percentile(0.99) / 1e6;
  out.zc_sends = r.counters.uring_zc_sends;
  out.zc_bytes = r.counters.uring_zc_bytes;
  out.zc_copied = r.counters.uring_zc_copied;
  out.fell_back = r.counters.uring_fallbacks > 0;
  return out;
}

}  // namespace

int main() {
  PrintHeader(
      "micro_io_backend: syscalls per request, architecture x I/O plane "
      "(epoll / uring readiness / uring completion / completion+SEND_ZC)");

  if (!IoUringAvailable()) {
    std::printf("note: io_uring unavailable on this kernel — the uring rows "
                "will run the epoll fallback.\n\n");
  }

  const double seconds = BenchSeconds(1.0);
  const int concurrency = 256;
  std::vector<size_t> sizes = {1024, 100 * 1024};
  std::vector<const ArchSpec*> archs;
  for (const ArchSpec& a : kArchs) archs.push_back(&a);
  if (BenchQuickMode()) {
    sizes = {1024};
    archs = {&kArchs[0], &kArchs[1]};
  }

  TablePrinter table({"arch", "size", "plane", "syscalls_per_req", "vs_epoll",
                      "sqe_per_batch", "req_per_sec", "p99_ms", "zc_sends",
                      "zc_MB"});
  std::vector<PointResult> results;
  for (const ArchSpec* arch : archs) {
    for (size_t size : sizes) {
      double epoll_baseline = 0.0;
      for (const PlaneSpec& plane : kPlanes) {
        const PointResult r = RunPoint(*arch, plane, concurrency, size,
                                       seconds);
        results.push_back(r);
        if (r.plane == "epoll") epoll_baseline = r.syscalls_per_req;
        table.AddRow(
            {r.arch, SizeLabel(size),
             r.fell_back ? r.plane + "(fb)" : r.plane,
             TablePrinter::Num(r.syscalls_per_req, 2),
             TablePrinter::Num(r.syscalls_per_req > 0
                                   ? epoll_baseline / r.syscalls_per_req
                                   : 0.0,
                               2),
             TablePrinter::Num(r.sqes_per_batch, 1),
             TablePrinter::Num(r.throughput, 0),
             TablePrinter::Num(r.p99_ms, 2),
             TablePrinter::Int(static_cast<int>(r.zc_sends)),
             TablePrinter::Num(static_cast<double>(r.zc_bytes) / (1024.0 *
                                                                  1024.0),
                               1)});
      }
    }
  }
  table.Print();
  ::unsetenv("HYNET_URING_ZC");

  FILE* f = std::fopen("BENCH_uring.json", "w");
  if (f) {
    std::fprintf(f, "{\"bench\":\"micro_io_backend\",\"points\":[\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const PointResult& r = results[i];
      std::fprintf(
          f,
          "  {\"arch\":\"%s\",\"plane\":\"%s\",\"fell_back\":%s,"
          "\"concurrency\":%d,\"response_bytes\":%zu,"
          "\"syscalls_per_req\":%.3f,\"sqes_per_batch\":%.2f,"
          "\"throughput_rps\":%.1f,\"p99_ms\":%.3f,"
          "\"zc_sends\":%llu,\"zc_bytes\":%llu,\"zc_copied\":%llu,"
          "\"zc_copy_avoided_bytes\":%llu}%s\n",
          r.arch.c_str(), r.plane.c_str(), r.fell_back ? "true" : "false",
          r.concurrency, r.size, r.syscalls_per_req, r.sqes_per_batch,
          r.throughput, r.p99_ms,
          static_cast<unsigned long long>(r.zc_sends),
          static_cast<unsigned long long>(r.zc_bytes),
          static_cast<unsigned long long>(r.zc_copied),
          static_cast<unsigned long long>(r.CopyAvoidedBytes()),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_uring.json\n");
  }

  std::printf(
      "\nExpected shape: the readiness planes pay ~3+ syscalls per request\n"
      "(wait share + read + write) on every architecture; the completion\n"
      "plane batches a whole iteration's SQEs into one io_uring_enter, so\n"
      "syscalls/request drops below 0.5 at 1KB. At 100KB the zc plane\n"
      "additionally routes sends through SENDMSG_ZC (zc_sends > 0);\n"
      "zc_copied counts notifications where the kernel copied anyway\n"
      "(expected on loopback, which has no DMA path to hide the copy).\n");
  return 0;
}
