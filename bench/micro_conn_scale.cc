// micro_conn_scale: bytes/conn, wake-ups/sec, and scrape latency at
// connection scale.
//
// The swarm client ramps tens of thousands of keep-alive sockets against
// a 2-shard SO_REUSEPORT SingleT-Async deployment and then mostly sits on
// them: requests arrive open-loop at a low aggregate rate, Zipf-skewed so
// a warm head stays active while the long tail goes idle. Each ladder
// point runs twice — cold_idle_ms=0 (no reclamation) and cold_idle_ms=300
// — and the comparison is the steady-state conn_bytes_resident/conn: the
// reclaim run must hold >= 4x less reclaimable heap per connection at the
// same count. Also recorded per point: wake-ups/sec in steady state
// (idle connections must not wake loops), client p99, and /metrics scrape
// latency (merged across shards at scrape time, so it must stay flat as
// connections grow 10k -> 50k).
//
// Knobs:
//   HYNET_CONNSCALE_CONNS   csv ladder, default "10000,50000"
//                           (100000+ works; needs ~2 fds/conn and one
//                           127.0.0.x source alias per ~24k conns,
//                           handled automatically)
//   HYNET_CONNSCALE_PLANES  csv from {epoll,uring}, default both (uring
//                           skipped when the kernel lacks io_uring)
//   HYNET_CONNSCALE_STRICT  exit non-zero when a check misses (CI smoke)
//   HYNET_BENCH_QUICK       trims the ladder to 2000 connections
//
//   ./build/bench/micro_conn_scale
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#include "bench_common.h"
#include "common/fd_limit.h"
#include "io/io_backend.h"

using namespace hynet;
using namespace hynet::benchx;

namespace {

constexpr int kShards = 2;
constexpr int kColdIdleMs = 300;
constexpr double kRampRate = 10000;    // connects/sec, total
constexpr double kRequestRate = 400;   // req/s aggregate across the swarm
constexpr int kConnsPerSource = 24000; // headroom under the ~28k port range
constexpr double kSteadySec = 3.0;

int64_t GaugeValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return v;
  }
  return 0;
}

std::vector<int> ParseLadder(const char* env, std::vector<int> fallback) {
  const char* s = std::getenv(env);
  if (!s || !*s) return fallback;
  std::vector<int> out;
  for (const char* p = s; *p;) {
    out.push_back(std::atoi(p));
    while (*p && *p != ',') ++p;
    if (*p == ',') ++p;
  }
  out.erase(std::remove_if(out.begin(), out.end(), [](int c) { return c <= 0; }),
            out.end());
  return out.empty() ? fallback : out;
}

struct PointResult {
  std::string plane;
  int conns_target = 0;
  bool reclaim = false;
  uint64_t established = 0;
  uint64_t live = 0;
  uint64_t connect_errors = 0;
  uint64_t closed_by_peer = 0;
  uint64_t response_errors = 0;
  uint64_t responses_ok = 0;
  int64_t conn_count = 0;
  int64_t cold = 0;
  double bytes_per_conn = 0.0;     // conn_bytes_total / conn_count
  double resident_per_conn = 0.0;  // conn_bytes_resident / conn_count
  double wakeups_per_sec = 0.0;
  double p99_ms = 0.0;
  double scrape_mean_us = 0.0;
  double scrape_max_us = 0.0;
};

PointResult RunPoint(const std::string& plane, int conns, bool reclaim) {
  PointResult out;
  out.plane = plane;
  out.conns_target = conns;
  out.reclaim = reclaim;

  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  config.io_backend = plane;
  config.shards = kShards;
  // Headroom over the even split: the REUSEPORT hash is only roughly
  // balanced, and the admission cap is enforced per shard.
  config.max_connections = conns + conns / 4 + 512;
  config.cold_idle_ms = reclaim ? kColdIdleMs : 0;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  const uint16_t port = server->Port();

  // One swarm client per ~24k connections, each sourcing from its own
  // loopback alias so the (saddr, daddr, dport) ephemeral-port range
  // never caps the ladder.
  const int n_clients = (conns + kConnsPerSource - 1) / kConnsPerSource;
  std::vector<std::unique_ptr<ConnScaleClient>> clients;
  for (int i = 0; i < n_clients; ++i) {
    ConnScaleConfig cc;
    cc.server = InetAddr::Loopback(port);
    cc.connections = conns / n_clients + (i < conns % n_clients ? 1 : 0);
    cc.ramp_rate = static_cast<int>(kRampRate) / n_clients;
    cc.request_rate = kRequestRate / n_clients;
    cc.seed = 1 + static_cast<uint64_t>(i);
    cc.source = InetAddr::FromIp("127.0.0." + std::to_string(1 + i), 0);
    clients.push_back(std::make_unique<ConnScaleClient>(std::move(cc)));
    clients.back()->Start();
  }
  const auto swarm_snapshot = [&] {
    ConnScaleSnapshot total;
    for (const auto& c : clients) {
      const ConnScaleSnapshot s = c->Snapshot();
      total.attempted += s.attempted;
      total.established += s.established;
      total.connect_errors += s.connect_errors;
      total.closed_by_peer += s.closed_by_peer;
      total.live += s.live;
      total.requests_sent += s.requests_sent;
      total.responses_ok += s.responses_ok;
      total.response_errors += s.response_errors;
      total.latency.Merge(s.latency);
    }
    return total;
  };

  // Wait out the ramp: everything attempted and nothing still in flight.
  const auto ramp_deadline =
      Now() + std::chrono::seconds(
                  30 + static_cast<int>(conns / kRampRate));
  while (Now() < ramp_deadline) {
    const ConnScaleSnapshot s = swarm_snapshot();
    if (s.attempted >= static_cast<uint64_t>(conns) &&
        s.live + s.connect_errors + s.closed_by_peer >= s.attempted) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Let the cold sweep(s) catch the idle tail, then measure steady state.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(reclaim ? 3 * kColdIdleMs : kColdIdleMs));
  const ServerCounters before = server->Snapshot();
  const TimePoint t0 = Now();
  std::this_thread::sleep_for(std::chrono::duration<double>(kSteadySec));
  const ServerCounters after = server->Snapshot();
  const double window = ToSeconds(Now() - t0);
  out.wakeups_per_sec =
      window > 0 ? static_cast<double>(after.loop_iterations -
                                       before.loop_iterations) /
                       window
                 : 0.0;

  // Scrape latency: the merged registry walk must be O(shards), so the
  // cost cannot scale with conn_count.
  {
    constexpr int kScrapes = 20;
    double sum_us = 0.0;
    for (int i = 0; i < kScrapes; ++i) {
      const TimePoint s0 = Now();
      const MetricsSnapshot snap = server->metrics().Scrape();
      const double us = ToSeconds(Now() - s0) * 1e6;
      sum_us += us;
      out.scrape_max_us = std::max(out.scrape_max_us, us);
      if (i + 1 == kScrapes) {
        out.conn_count = GaugeValue(snap, "conn_count");
        out.cold = GaugeValue(snap, "conn_cold");
        if (out.conn_count > 0) {
          out.bytes_per_conn =
              static_cast<double>(GaugeValue(snap, "conn_bytes_total")) /
              static_cast<double>(out.conn_count);
          out.resident_per_conn =
              static_cast<double>(GaugeValue(snap, "conn_bytes_resident")) /
              static_cast<double>(out.conn_count);
        }
      }
    }
    out.scrape_mean_us = sum_us / kScrapes;
  }

  const ConnScaleSnapshot s = swarm_snapshot();
  out.established = s.established;
  out.live = s.live;
  out.connect_errors = s.connect_errors;
  out.closed_by_peer = s.closed_by_peer;
  out.response_errors = s.response_errors;
  out.responses_ok = s.responses_ok;
  out.p99_ms = s.latency.Percentile(0.99) / 1e6;

  for (auto& c : clients) c->Stop();
  clients.clear();
  server->Stop();
  return out;
}

}  // namespace

int main() {
  PrintHeader(
      "micro_conn_scale: bytes/conn, wake-ups/sec, scrape latency at "
      "10k-100k mostly-idle connections (2 REUSEPORT shards)");

  std::vector<int> ladder =
      ParseLadder("HYNET_CONNSCALE_CONNS", {10000, 50000});
  if (BenchQuickMode()) ladder = {2000};
  std::vector<std::string> planes = {"epoll", "uring"};
  if (const char* p = std::getenv("HYNET_CONNSCALE_PLANES")) {
    planes.clear();
    std::string s(p);
    for (size_t pos = 0; pos < s.size();) {
      const size_t comma = s.find(',', pos);
      planes.push_back(s.substr(pos, comma - pos));
      pos = comma == std::string::npos ? s.size() : comma + 1;
    }
  }
  if (!IoUringAvailable()) {
    planes.erase(std::remove(planes.begin(), planes.end(), "uring"),
                 planes.end());
    std::printf("note: io_uring unavailable — epoll plane only.\n");
  }

  // Both swarm ends live in this process: 2 fds per connection plus slack.
  const int max_conns = *std::max_element(ladder.begin(), ladder.end());
  const FdLimit fd_limit =
      RaiseFdLimit(2 * static_cast<uint64_t>(max_conns) + 4096);
  std::printf("fd limit: %s\n", FormatFdLimit(fd_limit).c_str());
  // Hosts that withhold CAP_SYS_RESOURCE pin the hard limit; fit the
  // ladder to the budget rather than bailing (the full 50k/100k points
  // need `ulimit -n >= 2*conns + slack` before launch).
  const int budget = fd_limit.soft > 1024
                         ? static_cast<int>((fd_limit.soft - 1024) / 2)
                         : 0;
  if (budget < 1000) {
    std::printf("RLIMIT_NOFILE too low for even 1000 connections — raise "
                "`ulimit -n`.\n");
    return 1;
  }
  bool clamped = false;
  for (int& c : ladder) {
    if (c > budget) {
      c = budget;
      clamped = true;
    }
  }
  std::sort(ladder.begin(), ladder.end());
  ladder.erase(std::unique(ladder.begin(), ladder.end()), ladder.end());
  if (clamped) {
    // Keep two rungs so the scrape-flatness comparison still has a span.
    if (ladder.size() < 2 && ladder.front() >= 3000) {
      ladder.insert(ladder.begin(), ladder.front() / 3);
    }
    std::printf("note: fd budget caps the ladder at %d connections "
                "(2 fds/conn in-process).\n", budget);
  }
  std::printf("\n");

  std::vector<PointResult> results;
  bool all_pass = true;
  std::printf("%-6s %7s %8s %9s %7s %9s %9s %10s %8s %9s\n", "plane",
              "conns", "reclaim", "B/conn", "cold", "res/conn", "wake/s",
              "p99_ms", "scr_us", "errors");
  for (const std::string& plane : planes) {
    for (int conns : ladder) {
      for (bool reclaim : {false, true}) {
        PointResult r = RunPoint(plane, conns, reclaim);
        results.push_back(r);
        std::printf("%-6s %7d %8s %9.0f %7lld %9.0f %9.0f %10.2f %8.0f %9llu\n",
                    r.plane.c_str(), r.conns_target, r.reclaim ? "on" : "off",
                    r.bytes_per_conn, static_cast<long long>(r.cold),
                    r.resident_per_conn, r.wakeups_per_sec, r.p99_ms,
                    r.scrape_mean_us,
                    static_cast<unsigned long long>(r.connect_errors +
                                                    r.response_errors));
      }
    }
  }

  // Checks: reclaim cuts resident bytes/conn >= 4x at the same count; the
  // swarm actually reached >= 95% of the target; no error storms.
  std::printf("\n");
  for (size_t i = 0; i + 1 < results.size(); i += 2) {
    const PointResult& off = results[i];
    const PointResult& on = results[i + 1];
    const double ratio = on.resident_per_conn > 0
                             ? off.resident_per_conn / on.resident_per_conn
                             : (off.resident_per_conn > 0 ? 999.0 : 1.0);
    const bool scale_ok =
        on.live >= static_cast<uint64_t>(on.conns_target) * 95 / 100 &&
        off.live >= static_cast<uint64_t>(off.conns_target) * 95 / 100;
    const bool errors_ok = on.connect_errors + on.response_errors == 0 &&
                           off.connect_errors + off.response_errors == 0;
    const bool pass = ratio >= 4.0 && scale_ok && errors_ok;
    all_pass = all_pass && pass;
    std::printf("%s @%d: resident/conn %.0fB -> %.0fB (%.1fx) scale=%s "
                "errors=%s -> %s\n",
                off.plane.c_str(), off.conns_target, off.resident_per_conn,
                on.resident_per_conn, std::min(ratio, 999.0),
                scale_ok ? "ok" : "SHORT", errors_ok ? "0" : "NONZERO",
                pass ? "pass" : "FAIL");
  }

  FILE* f = std::fopen("BENCH_connscale.json", "w");
  if (f) {
    std::fprintf(f, "{\"bench\":\"micro_conn_scale\",\"shards\":%d,"
                 "\"cold_idle_ms\":%d,\"points\":[\n", kShards, kColdIdleMs);
    for (size_t i = 0; i < results.size(); ++i) {
      const PointResult& r = results[i];
      std::fprintf(
          f,
          "  {\"plane\":\"%s\",\"conns\":%d,\"reclaim\":%s,"
          "\"established\":%llu,\"live\":%llu,\"conn_count\":%lld,"
          "\"cold\":%lld,\"bytes_per_conn\":%.1f,\"resident_per_conn\":%.1f,"
          "\"wakeups_per_sec\":%.1f,\"p99_ms\":%.2f,"
          "\"scrape_mean_us\":%.1f,\"scrape_max_us\":%.1f,"
          "\"connect_errors\":%llu,\"response_errors\":%llu,"
          "\"responses_ok\":%llu}%s\n",
          r.plane.c_str(), r.conns_target, r.reclaim ? "true" : "false",
          static_cast<unsigned long long>(r.established),
          static_cast<unsigned long long>(r.live),
          static_cast<long long>(r.conn_count),
          static_cast<long long>(r.cold), r.bytes_per_conn,
          r.resident_per_conn, r.wakeups_per_sec, r.p99_ms,
          r.scrape_mean_us, r.scrape_max_us,
          static_cast<unsigned long long>(r.connect_errors),
          static_cast<unsigned long long>(r.response_errors),
          static_cast<unsigned long long>(r.responses_ok),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_connscale.json\n");
  }

  std::printf(
      "\nExpected shape: without reclamation every idle connection pins its\n"
      "grown read buffer, so resident bytes/conn sits at buffer capacity.\n"
      "With cold_idle_ms set the sweep returns those buffers to the pool\n"
      "(conn_cold counts them) and resident bytes/conn collapses to the\n"
      "few still-warm Zipf-head connections' share. Wake-ups/sec and the\n"
      "merged /metrics scrape cost track the active set and shard count,\n"
      "not the connection count.\n");
  if (!all_pass && std::getenv("HYNET_CONNSCALE_STRICT")) return 1;
  return 0;
}
