// micro_overload: goodput under 2x-capacity open-loop overload, resilience
// plane on vs off.
//
// For each architecture the bench first probes closed-loop capacity, then
// offers a Poisson arrival stream at 2x that rate — the regime where a
// server without admission control builds an unbounded queue and serves
// every response late. Two runs per architecture:
//
//   off: no deadlines, no shedding, no retries. The client still stamps
//        each request with an intended-arrival deadline so "good" (answered
//        inside the deadline) is measured identically in both runs.
//   on:  deadline propagation + queue-delay shedding on the server,
//        budgeted retries on the client.
//
// The plane converts queue-bloat latency into fast 503/504 rejections, so
// the requests that are answered are answered in time: goodput (good/sec)
// should be >= 1.5x the plane-off run, late_ok must drop to zero (the
// server refuses to serve past a dead deadline), and retries must stay
// within the token-bucket budget. Results go to BENCH_overload.json.
//
//   ./build/bench/micro_overload
#include <algorithm>
#include <thread>

#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

namespace {

// Heavy CPU per request keeps capacity low enough that the single client
// loop can offer 2x it in open-loop mode with plenty of core headroom left
// for timestamping: the client's lateness classification is only as good
// as its own scheduling latency, so the server must be the bottleneck by a
// wide margin.
constexpr double kCpuUs = 2000.0;
constexpr int kDeadlineMs = 300;
// Reserved out of every budget for the return leg (server write path,
// proxy relay, client receive scheduling — all contending for CPU on a
// small host, with observed tails of a few tens of ms). The server
// refuses to serve once fewer than this many ms remain.
constexpr int kDeadlineMarginMs = 40;
constexpr int kProbeConcurrency = 64;
constexpr int kOverloadConnections = 256;
// Long enough for the plane-off queue to blow well past the deadline
// before measuring starts: the baseline's collapse must not depend on the
// measure window length.
constexpr double kOverloadWarmupSec = 2.0;

struct RunResult {
  double goodput = 0.0;
  double throughput = 0.0;
  double p99_ms = 0.0;
  uint64_t good = 0;
  uint64_t ok = 0;
  uint64_t late_ok = 0;
  double worst_late_ms = 0.0;
  uint64_t shed_503 = 0;
  uint64_t deadline_504 = 0;
  uint64_t retries_issued = 0;
  uint64_t retry_budget_exhausted = 0;
  bool retries_bounded = true;
};

struct ArchResult {
  std::string arch;
  double capacity_rps = 0.0;
  double offered_rps = 0.0;
  RunResult off;
  RunResult on;

  // Capped: a plane-off run can collapse to zero goodput outright.
  double GoodputRatio() const {
    if (off.goodput <= 0) return on.goodput > 0 ? 999.0 : 1.0;
    return std::min(on.goodput / off.goodput, 999.0);
  }
};

BenchPoint BasePoint(ServerArchitecture arch, int concurrency,
                     double seconds) {
  BenchPoint p;
  p.server.architecture = arch;
  // Size the worker pool to the host: on a small box a wide pool of
  // CPU-burning workers just timeshares, stretching every request's wall
  // time (and the response's post-handler transmit leg) past any deadline.
  const unsigned cores = std::thread::hardware_concurrency();
  p.server.worker_threads = static_cast<int>(std::max(2u, std::min(cores, 8u)));
  p.concurrency = concurrency;
  p.measure_sec = seconds;
  p.targets = {{BenchTarget(kSmall, kCpuUs), 1.0}};
  return p;
}

RunResult RunOverloadPoint(ServerArchitecture arch, double offered_rps,
                           double seconds, bool plane_on) {
  BenchPoint p = BasePoint(arch, kOverloadConnections, seconds);
  p.warmup_sec = kOverloadWarmupSec;
  p.open_loop_rate = offered_rps;
  // The latency proxy interposes 1 ms each way: the deadline has to
  // survive real wire time, and the client's late_ok classification gets
  // the matching return-path allowance from the harness.
  p.latency_ms = 1.0;
  // Both runs carry the deadline stamp so "good" means the same thing;
  // only the plane-on server *enforces* it.
  p.request_deadline_ms = kDeadlineMs;
  if (plane_on) {
    p.server.deadline_propagation = true;
    p.server.deadline_margin_ms = kDeadlineMarginMs;
    p.server.shed_target_delay_ms = 10;
    p.server.shed_interval_ms = 50;
    p.client_retries = true;  // default RetryPolicyConfig: budgeted
  }
  const BenchPointResult r = RunBenchPoint(p);

  RunResult out;
  out.goodput = r.load.Goodput();
  out.throughput = r.Throughput();
  out.p99_ms = r.load.latency.Percentile(0.99) / 1e6;
  out.good = r.load.good;
  out.ok = r.load.ok;
  out.late_ok = r.load.late_ok;
  out.worst_late_ms = r.load.worst_late_ms;
  out.shed_503 = r.load.shed_503;
  out.deadline_504 = r.load.deadline_504;
  out.retries_issued = r.load.retries_issued;
  out.retry_budget_exhausted = r.load.retry_budget_exhausted;
  // The token bucket caps retries at initial_tokens + budget_ratio x
  // successes (whole run, warmup included); a violation means the budget
  // accounting regressed.
  const RetryPolicyConfig budget;  // defaults, as used by the run
  out.retries_bounded =
      static_cast<double>(out.retries_issued) <=
      budget.initial_tokens +
          budget.budget_ratio * static_cast<double>(r.load.retry_successes) +
          1e-9;
  return out;
}

}  // namespace

int main() {
  PrintHeader(
      "micro_overload: goodput at 2x capacity, resilience plane on vs off "
      "(deadlines + shedding + budgeted retries)");

  // Quick mode shortens the windows but keeps every architecture: the
  // acceptance comparison needs all three in BENCH_overload.json.
  const double seconds = BenchSeconds(BenchQuickMode() ? 1.0 : 2.0);
  const double probe_seconds = BenchQuickMode() ? 0.5 : 1.0;
  const std::vector<ServerArchitecture> archs = {
      ServerArchitecture::kSingleThread, ServerArchitecture::kReactorPool,
      ServerArchitecture::kHybrid};

  TablePrinter table({"arch", "capacity", "offered", "plane", "goodput",
                      "p99_ms", "late_ok", "shed", "d504", "retries"});
  std::vector<ArchResult> results;
  for (ServerArchitecture arch : archs) {
    ArchResult ar;
    ar.arch = ArchitectureName(arch);

    BenchPoint probe = BasePoint(arch, kProbeConcurrency, probe_seconds);
    ar.capacity_rps = RunBenchPoint(probe).Throughput();
    ar.offered_rps = 2.0 * ar.capacity_rps;

    ar.off = RunOverloadPoint(arch, ar.offered_rps, seconds, false);
    ar.on = RunOverloadPoint(arch, ar.offered_rps, seconds, true);
    results.push_back(ar);

    for (const bool plane_on : {false, true}) {
      const RunResult& r = plane_on ? ar.on : ar.off;
      table.AddRow({ar.arch, TablePrinter::Num(ar.capacity_rps, 0),
                    TablePrinter::Num(ar.offered_rps, 0),
                    plane_on ? "on" : "off", TablePrinter::Num(r.goodput, 0),
                    TablePrinter::Num(r.p99_ms, 1),
                    TablePrinter::Int(static_cast<int>(r.late_ok)),
                    TablePrinter::Int(static_cast<int>(r.shed_503)),
                    TablePrinter::Int(static_cast<int>(r.deadline_504)),
                    TablePrinter::Int(static_cast<int>(r.retries_issued))});
    }
  }
  table.Print();

  bool all_pass = true;
  for (const ArchResult& ar : results) {
    const bool pass = ar.GoodputRatio() >= 1.5 && ar.on.late_ok == 0 &&
                      ar.on.retries_bounded;
    all_pass = all_pass && pass;
    std::printf("%-16s goodput ratio %.2fx  late_ok(on)=%llu  "
                "retries %llu (bounded=%s)  -> %s\n",
                ar.arch.c_str(), ar.GoodputRatio(),
                static_cast<unsigned long long>(ar.on.late_ok),
                static_cast<unsigned long long>(ar.on.retries_issued),
                ar.on.retries_bounded ? "yes" : "NO",
                pass ? "pass" : "FAIL");
  }

  FILE* f = std::fopen("BENCH_overload.json", "w");
  if (f) {
    std::fprintf(f, "{\"bench\":\"micro_overload\",\"deadline_ms\":%d,"
                 "\"points\":[\n", kDeadlineMs);
    for (size_t i = 0; i < results.size(); ++i) {
      const ArchResult& ar = results[i];
      auto emit = [&](const char* key, const RunResult& r, const char* tail) {
        std::fprintf(
            f,
            "   \"%s\":{\"goodput_rps\":%.1f,\"throughput_rps\":%.1f,"
            "\"p99_ms\":%.2f,\"ok\":%llu,\"good\":%llu,\"late_ok\":%llu,"
            "\"worst_late_ms\":%.2f,"
            "\"shed_503\":%llu,\"deadline_504\":%llu,"
            "\"retries_issued\":%llu,\"retry_budget_exhausted\":%llu,"
            "\"retries_bounded\":%s}%s\n",
            key, r.goodput, r.throughput, r.p99_ms,
            static_cast<unsigned long long>(r.ok),
            static_cast<unsigned long long>(r.good),
            static_cast<unsigned long long>(r.late_ok), r.worst_late_ms,
            static_cast<unsigned long long>(r.shed_503),
            static_cast<unsigned long long>(r.deadline_504),
            static_cast<unsigned long long>(r.retries_issued),
            static_cast<unsigned long long>(r.retry_budget_exhausted),
            r.retries_bounded ? "true" : "false", tail);
      };
      std::fprintf(f,
                   "  {\"arch\":\"%s\",\"capacity_rps\":%.1f,"
                   "\"offered_rps\":%.1f,\"goodput_ratio\":%.3f,\n",
                   ar.arch.c_str(), ar.capacity_rps, ar.offered_rps,
                   ar.GoodputRatio());
      emit("plane_off", ar.off, ",");
      emit("plane_on", ar.on, "");
      std::fprintf(f, "  }%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_overload.json\n");
  }

  std::printf(
      "\nExpected shape: at 2x offered load the plane-off server queues\n"
      "without bound — p99 explodes and nearly every 2xx lands past its\n"
      "deadline (late_ok), so goodput collapses. With the plane on, queue-\n"
      "delay shedding and deadline fast-fail keep the queue short: what is\n"
      "answered is answered in time (late_ok = 0), 503/504 surface the\n"
      "rejections explicitly, and the retry layer stays inside its token\n"
      "budget instead of amplifying the overload.\n");
  if (!all_pass) {
    std::printf("\nnote: one or more checks missed target on this run — "
                "see BENCH_overload.json.\n");
  }
  return 0;
}
