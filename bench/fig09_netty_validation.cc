// Figure 9: NettyServer's write optimization — effective on large
// responses, costly on small ones. (a) 100 KB responses: NettyServer wins
// (write-spin mitigated). (b) 0.1 KB responses: NettyServer loses to
// SingleT-Async (outbound-buffer bookkeeping overhead with no spin to
// mitigate).
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  const double seconds = BenchSeconds(0.8);
  std::vector<int> concurrencies = {1, 4, 16, 64, 128};
  if (BenchQuickMode()) concurrencies = {16, 64};

  const ServerArchitecture archs[] = {
      ServerArchitecture::kMultiLoop,
      ServerArchitecture::kSingleThread,
      ServerArchitecture::kThreadPerConn,
  };

  // Subfigure (a) runs behind an emulated LAN RTT (1 ms one-way): the
  // paper's client was a separate machine, so its ACK clock had real
  // propagation delay; bare loopback ACKs instantly and hides the very
  // write-spin this figure demonstrates (see DESIGN.md substitutions).
  const struct {
    size_t size;
    double latency_ms;
    const char* subfig;
  } cases[] = {{kLarge, 1.0, "(a) 100KB, 1ms LAN RTT"},
               {kSmall, 0.0, "(b) 0.1KB"}};

  for (const auto& c : cases) {
    PrintHeader(std::string("Figure 9 ") + c.subfig +
                ": throughput [req/s]");
    TablePrinter table(
        {"concurrency", "NettyServer", "SingleT-Async", "sTomcat-Sync"});
    for (int conc : concurrencies) {
      std::vector<std::string> row = {TablePrinter::Int(conc)};
      for (ServerArchitecture arch : archs) {
        BenchPoint p = MakePoint(arch, c.size, conc, seconds);
        p.latency_ms = c.latency_ms;
        const BenchPointResult r = RunBenchPoint(p);
        row.push_back(TablePrinter::Num(r.Throughput(), 0));
      }
      table.AddRow(row);
    }
    table.Print();
    table.PrintCsv(std::string("fig09_") + SizeLabel(c.size));
  }

  std::printf(
      "\nExpected shape (paper): NettyServer best at 100KB; NettyServer\n"
      "below SingleT-Async at 0.1KB (optimization overhead).\n");
  return 0;
}
