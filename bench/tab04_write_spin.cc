// Table IV: socket write() calls per request for SingleT-Async as the
// response size grows past the TCP send buffer (16 KB default).
//
// Paper's measurement: 1 write/req at 0.1 KB and 10 KB, ~102 writes/req at
// 100 KB. On loopback the ACK clock is faster than on the testbed link, so
// the absolute count differs; the qualitative jump from exactly 1 to ≫1
// once the response exceeds the send buffer is the reproduced result.
#include <cstdio>

#include "client/bench_runner.h"
#include "metrics/report.h"

using namespace hynet;

int main() {
  PrintHeader(
      "Table IV: write-spin — socket.write() calls per request "
      "(SingleT-Async, 16KB send buffer)");

  const double seconds = BenchSeconds(1.0);
  const size_t sizes[] = {102, 10 * 1024, 100 * 1024};

  TablePrinter table({"resp_size", "requests", "write_calls", "zero_writes",
                      "writes_per_req"});

  for (size_t size : sizes) {
    BenchPoint point;
    point.server.architecture = ServerArchitecture::kSingleThread;
    point.server.snd_buf_bytes = 16 * 1024;
    point.concurrency = 8;
    point.measure_sec = seconds;
    point.targets = {{BenchTarget(size, DefaultCpuUs(size)), 1.0}};
    const BenchPointResult r = RunBenchPoint(point);

    char label[32];
    std::snprintf(label, sizeof(label), "%.1fKB",
                  static_cast<double>(size) / 1024.0);
    table.AddRow({label, TablePrinter::Int(static_cast<int64_t>(
                             r.counters.responses_sent)),
                  TablePrinter::Int(static_cast<int64_t>(
                      r.counters.write_calls)),
                  TablePrinter::Int(static_cast<int64_t>(
                      r.counters.zero_writes)),
                  TablePrinter::Num(r.WritesPerResponse(), 1)});
  }

  table.Print();
  table.PrintCsv("tab04");
  std::printf(
      "\nExpected shape (paper): 1 write/req while the response fits the\n"
      "send buffer; an order of magnitude more once it does not.\n");
  return 0;
}
