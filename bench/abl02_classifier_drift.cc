// Ablation B: the self-correcting classifier under response-size drift.
//
// The paper (Section V-B) argues the light/heavy map must be updated at
// runtime because "the response size even for the same type of requests
// may change over time (due to runtime environment changes such as
// dataset)". This bench serves /page?id=K endpoints whose response size
// flips between 0.1 KB and 100 KB halfway through the run, and compares
// HybridNetty (which relearns the flipped categories) against the two
// static architectures. The reclassification counter shows the map
// actually tracking the drift.
#include <atomic>

#include "bench_common.h"
#include "common/thread_util.h"
#include "proxy/latency_proxy.h"

using namespace hynet;
using namespace hynet::benchx;

namespace {

std::atomic<int> g_phase{0};

Handler MakeDriftHandler() {
  return [](const HttpRequest& req, HttpResponse& resp) {
    const int id = static_cast<int>(req.QueryParamInt("id", 0));
    // Phase 0: ids 0..7 are light, 8..15 heavy. Phase 1: flipped.
    const bool heavy = ((id < 8) == (g_phase.load(std::memory_order_relaxed) == 1));
    const size_t size = heavy ? kLarge : kSmall;
    BurnCpuMicros(DefaultCpuUs(size));
    resp.body.assign(size, 'd');
  };
}

}  // namespace

int main() {
  const double seconds = BenchSeconds(2.0);

  PrintHeader(
      "Ablation B: classifier under response-size drift "
      "(sizes flip halfway through the measure window)");
  TablePrinter table({"server", "throughput", "mean_rt_ms",
                      "reclassifications", "light_resps", "heavy_resps"});

  const ServerArchitecture archs[] = {
      ServerArchitecture::kHybrid,
      ServerArchitecture::kSingleThread,
      ServerArchitecture::kMultiLoop,
  };

  for (ServerArchitecture arch : archs) {
    g_phase.store(0);
    CalibrateCpuBurn();
    ServerConfig sc;
    sc.architecture = arch;
    auto server = CreateServer(sc, MakeDriftHandler());
    server->Start();

    // Run behind the LAN-RTT proxy (1 ms one-way): without ACK delay the
    // heavy half of the workload costs the static architectures nothing
    // on loopback and the path choice would not matter.
    LatencyProxyConfig pc;
    pc.upstream = InetAddr::Loopback(server->Port());
    pc.one_way_delay = std::chrono::microseconds(1000);
    LatencyProxy proxy(pc);
    proxy.Start();

    LoadConfig lc;
    lc.server = InetAddr::Loopback(proxy.Port());
    lc.connections = 64;
    lc.warmup_sec = 0.3;
    lc.measure_sec = seconds;
    for (int id = 0; id < 16; ++id) {
      lc.targets.push_back({"/page?id=" + std::to_string(id), 1.0});
    }
    lc.targets.erase(lc.targets.begin());  // drop the default "/"

    ServerCounters before;
    std::thread flipper;
    lc.on_measure_start = [&] {
      before = server->Snapshot();
      // Flip the dataset halfway through the window.
      flipper = std::thread([seconds] {
        std::this_thread::sleep_for(std::chrono::duration<double>(
            seconds / 2));
        g_phase.store(1, std::memory_order_relaxed);
      });
    };

    const LoadResult r = RunLoad(lc);
    if (flipper.joinable()) flipper.join();
    const ServerCounters delta = server->Snapshot() - before;
    proxy.Stop();
    server->Stop();

    table.AddRow({ArchitectureName(arch),
                  TablePrinter::Num(r.Throughput(), 0),
                  TablePrinter::Num(r.latency.Mean() / 1e6, 2),
                  TablePrinter::Int(static_cast<int64_t>(
                      delta.reclassifications)),
                  TablePrinter::Int(static_cast<int64_t>(
                      delta.light_path_responses)),
                  TablePrinter::Int(static_cast<int64_t>(
                      delta.heavy_path_responses))});
  }

  table.Print();
  table.PrintCsv("abl02");
  std::printf(
      "\nExpected: HybridNetty reclassifies the 16 flipped request types\n"
      "(~16-32 reclassifications) and keeps throughput at or above the\n"
      "better static architecture.\n");
  return 0;
}
