// Figure 7: impact of client-server network latency on throughput (a) and
// response time (b), 100 KB responses, 16 KB send buffer, concurrency 100.
// The paper: +5 ms one-way latency costs SingleT-Async ~95% of its
// throughput (response time amplifies 0.18 s → 3.6 s, Little's law), while
// the thread-based server barely moves — its blocked writers overlap.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  const double seconds = BenchSeconds(1.5);
  std::vector<double> latencies = {0.0, 1.0, 2.0, 5.0, 10.0};
  if (BenchQuickMode()) latencies = {0.0, 5.0};

  const ServerArchitecture archs[] = {
      ServerArchitecture::kSingleThread,
      ServerArchitecture::kReactorPoolFix,
      ServerArchitecture::kMultiLoop,
      ServerArchitecture::kThreadPerConn,
  };

  PrintHeader(
      "Figure 7 (a): throughput [req/s] vs one-way latency "
      "(100KB responses, concurrency 100)");
  TablePrinter tput({"latency_ms", "SingleT-Async", "sTomcat-Async-Fix",
                     "NettyServer", "sTomcat-Sync"});
  PrintHeader("collecting... (response-time table follows)");
  TablePrinter rt({"latency_ms", "SingleT-Async", "sTomcat-Async-Fix",
                   "NettyServer", "sTomcat-Sync"});

  for (double latency : latencies) {
    std::vector<std::string> tput_row = {TablePrinter::Num(latency, 1)};
    std::vector<std::string> rt_row = {TablePrinter::Num(latency, 1)};
    for (ServerArchitecture arch : archs) {
      BenchPoint p = MakePoint(arch, kLarge, 100, seconds);
      p.latency_ms = latency;
      const BenchPointResult r = RunBenchPoint(p);
      tput_row.push_back(TablePrinter::Num(r.Throughput(), 0));
      rt_row.push_back(TablePrinter::Num(r.MeanLatencyMs(), 1));
    }
    tput.AddRow(tput_row);
    rt.AddRow(rt_row);
  }

  tput.Print();
  tput.PrintCsv("fig07a");
  PrintHeader("Figure 7 (b): mean response time [ms]");
  rt.Print();
  rt.PrintCsv("fig07b");

  std::printf(
      "\nExpected shape (paper): SingleT-Async collapses within a few ms\n"
      "of latency (RT amplification); sTomcat-Sync stays nearly flat;\n"
      "NettyServer sits close to sTomcat-Sync.\n");
  return 0;
}
