// micro_dispatch_batch: voluntary context switches per request on the
// reactor+pool dispatch path, sweeping dispatch_batch × concurrency.
//
// At dispatch_batch=1 every ready event is its own condvar handoff —
// the reactor wakes one worker per event (two voluntary switches per
// request, the paper's Figure 3 flow). With batching, the reactor hands a
// whole epoll batch to the pool in one wake and each worker drains up to
// dispatch_batch tasks per wake, so the handoff cost amortizes across the
// batch; wakeup coalescing removes the eventfd writes on the return path.
// The batch=1 column is the unchanged baseline (it must match
// tab01_ctx_switches), emitted to BENCH_dispatch.json.
//
//   ./build/bench/micro_dispatch_batch
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

namespace {

struct PointResult {
  int batch = 0;
  int concurrency = 0;
  double vol_cs_per_req = 0.0;
  double throughput = 0.0;
  double events_per_handoff = 0.0;  // dispatches_to_worker / dispatch_batches
  double wakeup_elided_share = 0.0;
};

PointResult RunPoint(int batch, int concurrency, double seconds) {
  BenchPoint p =
      MakePoint(ServerArchitecture::kReactorPool, kSmall, concurrency,
                seconds);
  p.server.dispatch_batch = batch;
  const BenchPointResult r = RunBenchPoint(p);

  PointResult out;
  out.batch = batch;
  out.concurrency = concurrency;
  out.vol_cs_per_req =
      r.load.completed
          ? static_cast<double>(r.activity.ctx_switches.voluntary) /
                static_cast<double>(r.load.completed)
          : 0.0;
  out.throughput = r.Throughput();
  out.events_per_handoff =
      r.counters.dispatch_batches
          ? static_cast<double>(r.counters.requests_handled) /
                static_cast<double>(r.counters.dispatch_batches)
          : 0.0;
  const uint64_t wakeups =
      r.counters.wakeup_writes_issued + r.counters.wakeup_writes_elided;
  out.wakeup_elided_share =
      wakeups ? static_cast<double>(r.counters.wakeup_writes_elided) /
                    static_cast<double>(wakeups)
              : 0.0;
  return out;
}

}  // namespace

int main() {
  PrintHeader(
      "micro_dispatch_batch: voluntary ctx switches per request, "
      "reactor+pool, dispatch_batch x concurrency");

  const double seconds = BenchSeconds(1.0);
  std::vector<int> batches = {1, 8, 32};
  std::vector<int> concurrencies = {8, 64, 128};
  if (BenchQuickMode()) {
    batches = {1, 8};
    concurrencies = {8, 64};
  }

  TablePrinter table({"conc", "batch", "vol_cs_per_req", "vs_batch1",
                      "req_per_handoff", "wakeups_elided", "req_per_sec"});
  std::vector<PointResult> results;
  for (int conc : concurrencies) {
    double baseline = 0.0;
    for (int batch : batches) {
      const PointResult r = RunPoint(batch, conc, seconds);
      results.push_back(r);
      if (batch == 1) baseline = r.vol_cs_per_req;
      table.AddRow(
          {TablePrinter::Int(conc), TablePrinter::Int(batch),
           TablePrinter::Num(r.vol_cs_per_req, 2),
           TablePrinter::Num(
               r.vol_cs_per_req > 0 ? baseline / r.vol_cs_per_req : 0.0, 1),
           TablePrinter::Num(r.events_per_handoff, 1),
           TablePrinter::Num(r.wakeup_elided_share * 100.0, 0),
           TablePrinter::Num(r.throughput, 0)});
    }
  }
  table.Print();

  FILE* f = std::fopen("BENCH_dispatch.json", "w");
  if (f) {
    std::fprintf(f, "{\"bench\":\"micro_dispatch_batch\",\"points\":[\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const PointResult& r = results[i];
      std::fprintf(f,
                   "  {\"concurrency\":%d,\"dispatch_batch\":%d,"
                   "\"voluntary_cs_per_req\":%.3f,"
                   "\"requests_per_handoff\":%.2f,"
                   "\"wakeup_elided_share\":%.3f,"
                   "\"throughput_rps\":%.1f}%s\n",
                   r.concurrency, r.batch, r.vol_cs_per_req,
                   r.events_per_handoff, r.wakeup_elided_share, r.throughput,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_dispatch.json\n");
  }

  std::printf(
      "\nExpected shape: batch=1 matches the tab01 baseline (about two\n"
      "voluntary switches per request from the reactor->worker handoff).\n"
      "At concurrency >= 64 and dispatch_batch >= 8 the epoll batches are\n"
      "full, so one condvar wake carries many events: >= 2x fewer\n"
      "voluntary switches per request, with most return-path eventfd\n"
      "wakeups elided by coalescing.\n");
  return 0;
}
