// Figure 5: the write-spin mechanism (TCP send buffer + wait-ACK sliding
// window). The paper presents this as a diagram; here the deterministic
// simnet model regenerates its arithmetic as a table: how many write()
// calls a response needs, and how the transfer time is ACK-clocked, as a
// function of buffer size and RTT.
//
// This is the exact model the real-socket benches approximate; the
// property tests in tests/simnet_test.cc pin these numbers down
// (productive writes == ceil(response/buffer), completion ==
// (ceil(R/B)-1)*RTT + RTT/2).
#include "bench_common.h"
#include "simnet/sim_network.h"

using namespace hynet;
using namespace hynet::benchx;
using namespace hynet::simnet;

int main() {
  PrintHeader(
      "Figure 5 (model): ACK-clocked write-spin — deterministic simnet");

  TablePrinter table({"resp_size", "sndbuf", "rtt_ms", "write_calls",
                      "zero_writes", "transfer_ms"});

  const struct {
    int64_t resp;
    int64_t buf;
    int64_t rtt_us;
  } rows[] = {
      {102, 16 * 1024, 1000},          // 0.1KB: one write, no spin
      {10 * 1024, 16 * 1024, 1000},    // 10KB: still one write
      {100 * 1024, 16 * 1024, 1000},   // 100KB: the spin (Table IV row 3)
      {100 * 1024, 16 * 1024, 5000},   // ... amplified by RTT (Fig 7)
      {100 * 1024, 16 * 1024, 10000},
      {100 * 1024, 100 * 1024, 5000},  // buffer == response: spin gone
      {1 << 20, 16 * 1024, 5000},      // 1MB push (HTTP/2 scenario, §IV)
  };

  for (const auto& row : rows) {
    SimLoopConfig config;
    config.connections = 1;
    config.response_bytes = row.resp;
    config.send_buffer_bytes = row.buf;
    config.rtt_us = row.rtt_us;
    config.strategy = WriteStrategy::kSpinUntilDone;
    const SimLoopResult r = SimulateEventLoopWrites(config);

    table.AddRow({SizeLabel(static_cast<size_t>(row.resp)),
                  SizeLabel(static_cast<size_t>(row.buf)),
                  TablePrinter::Num(row.rtt_us / 1000.0, 0),
                  TablePrinter::Int(static_cast<int64_t>(
                      r.total_write_calls)),
                  TablePrinter::Int(static_cast<int64_t>(
                      r.total_zero_writes)),
                  TablePrinter::Num(r.makespan_us / 1000.0, 1)});
  }

  table.Print();
  table.PrintCsv("fig05");
  std::printf(
      "\nReading: while the response fits the send buffer one write()\n"
      "suffices; past it, every additional buffer-full of data costs one\n"
      "ACK round trip, and a spinning server burns write() calls (zero\n"
      "writes) in between — the paper's 102 writes for 100KB/16KB.\n");
  return 0;
}
