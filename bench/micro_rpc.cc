// micro_rpc: per-method hybrid routing vs the two pure strategies, on the
// multiplexed RPC/KV plane.
//
// Workload: pipelined KV mix over one server — Lookup (tiny response,
// ~zero CPU), Read (values past the send buffer, heavy on the write axis)
// and Write (burns CPU before acking, heavy on the CPU axis). Three
// routing strategies serve the identical mix:
//
//   blocking — every method routed kWorker: the thread-blocking design;
//              each tiny Lookup pays the handoff + marshal-back switches.
//   reactor  — every method routed kInline: SingleT-Async semantics; a
//              100KB Read spin-writes on the loop thread and every
//              pipelined request behind it stalls, as does each Write's
//              handler CPU.
//   hybrid   — kAuto everywhere: runtime classification routes Lookup
//              inline and sends Read (write axis) and Write (CPU axis) to
//              the worker pool.
//
// Sweep: strategy x pipeline depth (1 = closed loop, 16/64 = multiplexed).
// Results go to BENCH_rpc.json.
//
//   ./build/bench/micro_rpc
#include <algorithm>
#include <memory>

#include "app/kv_service.h"
#include "app/rpc_server.h"
#include "bench_common.h"
#include "client/rpc_load_gen.h"

using namespace hynet;
using namespace hynet::benchx;

namespace {

constexpr size_t kKeySpace = 512;
constexpr size_t kValueBytes = 100 * 1024;  // Reads are write-axis heavy
constexpr double kWriteCpuUs = 300;         // Writes are CPU-axis heavy
constexpr size_t kWriteValueBytes = 64;     // written values stay small

struct PointResult {
  std::string strategy;
  int depth = 0;
  double throughput = 0.0;
  double p99_ms = 0.0;
  double lookup_p99_ms = 0.0;
  uint64_t completed = 0;
  uint64_t errors = 0;
  uint64_t client_ooo = 0;
  uint64_t server_ooo = 0;
  uint64_t inflight_peak = 0;
  double ooo_share = 0.0;
  // Overhead anatomy: syscalls and wakeups per response.
  double writes_per_resp = 0.0;
  double zero_writes_per_resp = 0.0;
  double wakeups_per_resp = 0.0;
};

std::vector<MethodRouteEntry> RoutesFor(const std::string& strategy) {
  RpcRoute route;
  if (strategy == "blocking") {
    route = RpcRoute::kWorker;
  } else if (strategy == "reactor") {
    route = RpcRoute::kInline;
  } else {
    return {};  // hybrid: architecture default (kAuto) for every method
  }
  return {{kKvMethodLookup, route},
          {kKvMethodRead, route},
          {kKvMethodWrite, route}};
}

PointResult RunOnce(const std::string& strategy, int depth, double seconds) {
  auto store = std::make_shared<KvStore>();
  store->Preload(kKeySpace, kValueBytes);

  ServerConfig cfg;
  cfg.architecture = ServerArchitecture::kHybrid;
  cfg.protocol = "rpc";
  cfg.rpc_routes = RoutesFor(strategy);
  cfg.event_loops = 1;
  cfg.worker_threads = 2;
  cfg.snd_buf_bytes = 16 * 1024;
  // The paper's testbed drives load from a remote client, so a spinning
  // server core cannot help drain the receiver. On this loopback host the
  // sched_yield escape would donate the spinner's timeslice to the
  // colocated client and hide the spin cost entirely — disable it so the
  // naive inline path pays what it pays over a real network.
  cfg.yield_on_full_write = false;

  KvServiceOptions kv;
  kv.write_cpu_us = kWriteCpuUs;
  auto server = CreateServer(cfg, MakeKvService(store, kv));
  server->Start();

  RpcLoadConfig load;
  load.server = InetAddr::Loopback(server->Port());
  load.connections = 2;
  load.pipeline_depth = depth;
  load.warmup_sec = 0.2;
  load.measure_sec = seconds;
  load.mix = {{kKvMethodLookup, 0.70},
              {kKvMethodRead, 0.20},
              {kKvMethodWrite, 0.10}};
  load.key_space = kKeySpace;
  load.write_value_bytes = kWriteValueBytes;
  const RpcLoadResult r = RunRpcLoad(load);

  const ServerCounters counters = server->Snapshot();
  server->Stop();

  PointResult out;
  out.strategy = strategy;
  out.depth = depth;
  out.throughput = r.Throughput();
  out.p99_ms = r.latency.Percentile(0.99) / 1e6;
  const auto lookup = r.per_method.find(kKvMethodLookup);
  if (lookup != r.per_method.end()) {
    out.lookup_p99_ms = lookup->second.latency.Percentile(0.99) / 1e6;
  }
  out.completed = r.completed;
  out.errors = r.errors;
  out.client_ooo = r.out_of_order;
  out.server_ooo = counters.rpc_out_of_order_responses;
  out.inflight_peak = counters.rpc_inflight_peak;
  out.ooo_share = counters.rpc_requests
                      ? static_cast<double>(out.server_ooo) /
                            static_cast<double>(counters.rpc_requests)
                      : 0.0;
  if (counters.responses_sent) {
    const double responses = static_cast<double>(counters.responses_sent);
    out.writes_per_resp =
        static_cast<double>(counters.write_calls + counters.writev_calls) /
        responses;
    out.zero_writes_per_resp =
        static_cast<double>(counters.zero_writes) / responses;
    out.wakeups_per_resp =
        static_cast<double>(counters.wakeup_writes_issued) / responses;
  }
  return out;
}

// A fresh server + load pair per trial; the median by throughput absorbs
// the scheduling noise of a fully loaded single-core host.
PointResult RunPoint(const std::string& strategy, int depth, double seconds,
                     int trials) {
  std::vector<PointResult> runs;
  for (int t = 0; t < trials; ++t) {
    runs.push_back(RunOnce(strategy, depth, seconds));
  }
  std::sort(runs.begin(), runs.end(),
            [](const PointResult& a, const PointResult& b) {
              return a.throughput < b.throughput;
            });
  return runs[runs.size() / 2];
}

}  // namespace

int main() {
  PrintHeader(
      "micro_rpc: per-method routing strategies on the multiplexed RPC/KV "
      "plane, strategy x pipeline depth (70% Lookup / 20% Read-100KB / "
      "10% Write-300us)");

  const double seconds = BenchSeconds(1.5);
  std::vector<int> depths = {1, 16, 64};
  int trials = 3;
  if (BenchQuickMode()) {
    depths = {16};
    trials = 1;
  }

  TablePrinter table({"depth", "strategy", "req_per_sec", "vs_best_pure",
                      "p99_ms", "lookup_p99_ms", "ooo_share", "writes_pr",
                      "zero_wr_pr", "wakeups_pr", "errors"});
  std::vector<PointResult> results;
  for (int depth : depths) {
    double best_pure = 0.0;
    std::vector<PointResult> row;
    for (const char* strategy : {"blocking", "reactor", "hybrid"}) {
      const PointResult r = RunPoint(strategy, depth, seconds, trials);
      row.push_back(r);
      if (r.strategy != "hybrid") best_pure = std::max(best_pure, r.throughput);
    }
    for (const PointResult& r : row) {
      results.push_back(r);
      table.AddRow({TablePrinter::Int(r.depth), r.strategy,
                    TablePrinter::Num(r.throughput, 0),
                    TablePrinter::Num(
                        best_pure > 0 ? r.throughput / best_pure : 0.0, 2),
                    TablePrinter::Num(r.p99_ms, 2),
                    TablePrinter::Num(r.lookup_p99_ms, 2),
                    TablePrinter::Num(r.ooo_share, 3),
                    TablePrinter::Num(r.writes_per_resp, 2),
                    TablePrinter::Num(r.zero_writes_per_resp, 2),
                    TablePrinter::Num(r.wakeups_per_resp, 2),
                    TablePrinter::Int(static_cast<int>(r.errors))});
    }
  }
  table.Print();

  FILE* f = std::fopen("BENCH_rpc.json", "w");
  if (f) {
    std::fprintf(f, "{\"bench\":\"micro_rpc\",\"points\":[\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const PointResult& r = results[i];
      std::fprintf(
          f,
          "  {\"strategy\":\"%s\",\"pipeline_depth\":%d,"
          "\"throughput_rps\":%.1f,\"p99_ms\":%.3f,\"lookup_p99_ms\":%.3f,"
          "\"completed\":%llu,\"errors\":%llu,"
          "\"client_out_of_order\":%llu,\"server_out_of_order\":%llu,"
          "\"ooo_share\":%.4f,\"inflight_peak\":%llu,"
          "\"writes_per_resp\":%.2f,\"zero_writes_per_resp\":%.2f,"
          "\"wakeups_per_resp\":%.2f}%s\n",
          r.strategy.c_str(), r.depth, r.throughput, r.p99_ms, r.lookup_p99_ms,
          static_cast<unsigned long long>(r.completed),
          static_cast<unsigned long long>(r.errors),
          static_cast<unsigned long long>(r.client_ooo),
          static_cast<unsigned long long>(r.server_ooo), r.ooo_share,
          static_cast<unsigned long long>(r.inflight_peak),
          r.writes_per_resp, r.zero_writes_per_resp, r.wakeups_per_resp,
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_rpc.json\n");
  }

  std::printf(
      "\nExpected shape: at pipeline depth >= 16 the hybrid rows beat both\n"
      "pure strategies (vs_best_pure > 1); at depth 1 the three converge,\n"
      "since an unpipelined spin has nothing else to displace. All-inline\n"
      "burns zero_wr_pr ~10+ failed writes per response on the 100KB\n"
      "Reads; all-worker pays a pool handoff + wakeup for every tiny\n"
      "Lookup. kAuto routes Lookups inline (coalescing a burst's\n"
      "responses into one writev: writes_pr drops below both) and sends\n"
      "the heavy methods to the pool, so lookup_p99 stays ~10x below the\n"
      "pure rows at depth while Reads/Writes complete out of order\n"
      "(ooo_share).\n");
  return 0;
}
