// micro_writev_batch: syscalls per response, write()-per-message vs the
// vectored OutboundBuffer flush, across pipelining depth × body size.
//
// The seed outbound path issued one write() per queued message (and more
// once a response outgrew the kernel buffer). The vectored flush batches
// every pending payload segment into one writev (sendmsg) per syscall, so
// a pipelined burst of small responses drains in a single call. This bench
// isolates that effect on a socketpair — no HTTP, no event loop — and
// emits BENCH_writev.json.
//
// The peer is simulated deterministically: the writer runs until EAGAIN,
// then the reader side is drained completely and the writer resumes. Every
// write/writev attempt counts, exactly like WriteStats.write_calls.
//
//   ./build/bench/micro_writev_batch
#include <sys/socket.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/fd.h"
#include "common/payload.h"
#include "metrics/report.h"
#include "net/socket.h"
#include "runtime/outbound_buffer.h"

using namespace hynet;

namespace {

struct PointResult {
  int depth = 0;
  size_t body_bytes = 0;
  double write_per_msg = 0.0;  // syscalls per response, seed strategy
  double writev_batch = 0.0;   // syscalls per response, vectored flush
};

constexpr int kRounds = 100;

// One benchmark cell: `depth` pipelined responses of `body_bytes` each,
// repeated kRounds times per strategy.
PointResult RunPoint(int depth, size_t body_bytes) {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    std::perror("socketpair");
    std::exit(1);
  }
  ScopedFd writer(fds[0]);
  ScopedFd reader(fds[1]);
  SetFdNonBlocking(writer.get(), true);
  SetFdNonBlocking(reader.get(), true);
  // Small kernel buffer so 100 KB responses need several syscalls, as on
  // the paper's testbed (16 KB default send buffer).
  const int small = 16 * 1024;
  ::setsockopt(writer.get(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));

  // Deterministic stand-in for the peer's ACK clock: empty the socket
  // whenever the writer hits a full kernel buffer.
  const auto drain = [&] {
    char buf[64 * 1024];
    while (true) {
      const IoResult r = ReadFd(reader.get(), buf, sizeof(buf));
      if (r.n <= 0) break;
    }
  };

  const std::string head = "HTTP/1.1 200 OK\r\nContent-Length: " +
                           std::to_string(body_bytes) + "\r\n\r\n";
  auto body = std::make_shared<const std::string>(std::string(body_bytes, 'x'));

  // Strategy A — the seed path: each message is flattened and written with
  // its own write() loop (one syscall per message, more when the kernel
  // buffer is full).
  uint64_t a_syscalls = 0;
  const std::string flat = head + *body;
  for (int round = 0; round < kRounds; ++round) {
    for (int m = 0; m < depth; ++m) {
      size_t off = 0;
      while (off < flat.size()) {
        const IoResult r =
            WriteFd(writer.get(), flat.data() + off, flat.size() - off);
        a_syscalls++;
        if (r.Fatal()) std::exit(1);
        if (r.n > 0) {
          off += static_cast<size_t>(r.n);
        } else {
          drain();
        }
      }
    }
    drain();
  }

  // Strategy B — the vectored flush: the whole burst is queued as Payload
  // nodes, then drained with writev batches.
  WriteStats stats;
  for (int round = 0; round < kRounds; ++round) {
    OutboundBuffer buf(/*spin_cap=*/0);
    for (int m = 0; m < depth; ++m) {
      buf.Add(Payload(std::string(head), body));
    }
    while (true) {
      const FlushResult fr = buf.Flush(writer.get(), stats);
      if (fr == FlushResult::kDone) break;
      if (fr == FlushResult::kError) std::exit(1);
      drain();
    }
    drain();
  }

  const double responses = static_cast<double>(kRounds) * depth;
  PointResult r;
  r.depth = depth;
  r.body_bytes = body_bytes;
  r.write_per_msg = static_cast<double>(a_syscalls) / responses;
  r.writev_batch =
      static_cast<double>(stats.write_calls.load()) / responses;
  return r;
}

}  // namespace

int main() {
  PrintHeader(
      "micro_writev_batch: syscalls per response — write() per message vs "
      "vectored flush (16KB send buffer)");

  const int depths[] = {1, 4, 16, 64};
  const size_t sizes[] = {1024, 100 * 1024};

  TablePrinter table({"pipelined", "body", "write_per_msg", "writev_batch",
                      "syscall_ratio"});
  std::vector<PointResult> results;
  for (size_t size : sizes) {
    for (int depth : depths) {
      const PointResult r = RunPoint(depth, size);
      results.push_back(r);
      char body_label[32];
      std::snprintf(body_label, sizeof(body_label), "%zuKB", size / 1024);
      table.AddRow({TablePrinter::Int(depth), body_label,
                    TablePrinter::Num(r.write_per_msg, 2),
                    TablePrinter::Num(r.writev_batch, 2),
                    TablePrinter::Num(
                        r.writev_batch > 0 ? r.write_per_msg / r.writev_batch
                                           : 0.0,
                        1)});
    }
  }
  table.Print();

  FILE* f = std::fopen("BENCH_writev.json", "w");
  if (f) {
    std::fprintf(f, "{\"bench\":\"micro_writev_batch\",\"points\":[\n");
    for (size_t i = 0; i < results.size(); ++i) {
      const PointResult& r = results[i];
      std::fprintf(f,
                   "  {\"pipelined\":%d,\"body_bytes\":%zu,"
                   "\"write_per_msg_syscalls_per_resp\":%.3f,"
                   "\"writev_syscalls_per_resp\":%.3f}%s\n",
                   r.depth, r.body_bytes, r.write_per_msg, r.writev_batch,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_writev.json\n");
  }

  std::printf(
      "\nExpected shape: at depth 1 the strategies tie; pipelined small\n"
      "responses coalesce into one writev each flush (>=2x fewer syscalls\n"
      "per response), and 100KB responses stay syscall-bound by the send\n"
      "buffer either way (no regression).\n");
  return 0;
}
