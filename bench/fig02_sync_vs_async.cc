// Figure 2: standalone Tomcat throughput comparison — thread-based
// TomcatSync (sTomcat-Sync here) vs asynchronous TomcatAsync
// (sTomcat-Async) across workload concurrency, for the three response
// sizes. The paper's finding: the async version loses below a
// size-dependent crossover concurrency because of its event-processing
// context switches.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  const double seconds = BenchSeconds(0.8);
  std::vector<int> concurrencies = {1, 4, 8, 16, 32, 64, 128};
  if (BenchQuickMode()) concurrencies = {4, 32};

  const ServerArchitecture archs[] = {ServerArchitecture::kThreadPerConn,
                                      ServerArchitecture::kReactorPool};
  const size_t sizes[] = {kSmall, kMedium, kLarge};

  for (size_t size : sizes) {
    PrintHeader("Figure 2: TomcatSync vs TomcatAsync, response size " +
                SizeLabel(size));
    TablePrinter table(
        {"concurrency", "sync_tput", "async_tput", "async/sync"});
    for (int conc : concurrencies) {
      double tput[2] = {0, 0};
      for (int a = 0; a < 2; ++a) {
        BenchPoint p = MakePoint(archs[a], size, conc, seconds);
        tput[a] = RunBenchPoint(p).Throughput();
      }
      table.AddRow({TablePrinter::Int(conc), TablePrinter::Num(tput[0], 0),
                    TablePrinter::Num(tput[1], 0),
                    TablePrinter::Num(tput[0] > 0 ? tput[1] / tput[0] : 0,
                                      2)});
    }
    table.Print();
    table.PrintCsv("fig02_" + SizeLabel(size));
  }

  std::printf(
      "\nExpected shape (paper): async/sync < 1 at low/mid concurrency;\n"
      "the crossover moves right as the response size grows.\n");
  return 0;
}
