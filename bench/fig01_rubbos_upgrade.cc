// Figure 1: the motivating 3-tier RUBBoS experiment — system throughput
// and response time before/after "upgrading" the app tier from the
// thread-based connector (SYS_tomcatV7) to the asynchronous connector
// (SYS_tomcatV8), under increasing numbers of emulated users.
//
// Paper's finding: the upgraded (async) system saturates earlier; at the
// thread-based system's saturation workload it trails by ~28% throughput
// with an order-of-magnitude worse response time, and context-switches
// ~2x more. User counts here are scaled 10x down with think time scaled
// 10x down (0.7 s vs 7 s) — identical offered load per user second.
#include "bench_common.h"
#include "rubbos/system.h"

using namespace hynet;
using namespace hynet::benchx;
using namespace hynet::rubbos;

int main() {
  const double seconds = BenchSeconds(3.0);
  std::vector<int> user_counts = {500, 1000, 1500, 2000, 2500, 3000, 3500};
  if (BenchQuickMode()) user_counts = {500, 2500};

  const struct {
    const char* label;
    ServerArchitecture arch;
  } systems[] = {
      {"SYS_tomcatV7(sync)", ServerArchitecture::kThreadPerConn},
      {"SYS_tomcatV8(async)", ServerArchitecture::kReactorPool},
  };

  PrintHeader(
      "Figure 1: 3-tier RUBBoS, thread-based vs asynchronous app tier "
      "(think time 0.7s; users scaled 1/10 of paper's)");
  TablePrinter table({"users", "system", "tput_req_s", "mean_rt_ms",
                      "p95_rt_ms", "app_cs_per_sec", "errors"});

  for (int users : user_counts) {
    for (const auto& sys : systems) {
      ThreeTierConfig config;
      config.app_architecture = sys.arch;

      RubbosWorkloadConfig load;
      load.users = users;
      load.think_time_sec = 0.7;
      load.warmup_sec = 1.5;
      load.measure_sec = seconds;

      const ThreeTierPointResult r = RunThreeTierPoint(config, load);
      table.AddRow(
          {TablePrinter::Int(users), sys.label,
           TablePrinter::Num(r.Throughput(), 1),
           TablePrinter::Num(r.workload.response_time.Mean() / 1e6, 1),
           TablePrinter::Num(
               static_cast<double>(r.workload.response_time.Percentile(0.95)) /
                   1e6,
               1),
           TablePrinter::Num(r.app_activity.CtxSwitchesPerSec(), 0),
           TablePrinter::Int(static_cast<int64_t>(r.workload.errors))});
    }
  }

  table.Print();
  table.PrintCsv("fig01");
  std::printf(
      "\nExpected shape (paper): both systems track each other at low\n"
      "load; the async system saturates earlier, with lower peak\n"
      "throughput, higher response time, and more context switches.\n");
  return 0;
}
