// Extension 2: request anatomy — where each architecture spends a
// request's time (phase profiler: parse / handler / serialize / write).
//
// This decomposition explains the paper's results mechanistically: under
// network latency only the *write* phase of the naive asynchronous
// designs explodes (the thread is glued to an ACK-starved socket); parse,
// handler, and serialize are architecture-independent.
#include <optional>

#include "bench_common.h"
#include "common/thread_util.h"
#include "proxy/latency_proxy.h"

using namespace hynet;
using namespace hynet::benchx;

namespace {

struct AnatomyRow {
  PhaseProfiler::Snapshot phases;
  double throughput;
};

AnatomyRow RunOne(ServerArchitecture arch, double latency_ms,
                  double seconds) {
  BenchPoint p = MakePoint(arch, kLarge, 50, seconds);
  p.server.profile_phases = true;
  p.latency_ms = latency_ms;

  // RunBenchPoint owns the server, so phase snapshots must be taken via a
  // custom run: replicate the harness with profiler access.
  CalibrateCpuBurn();
  auto server = CreateServer(p.server, MakeBenchHandler());
  server->Start();
  std::optional<LatencyProxy> proxy;
  uint16_t port = server->Port();
  if (latency_ms > 0) {
    LatencyProxyConfig pc;
    pc.upstream = InetAddr::Loopback(port);
    pc.one_way_delay = std::chrono::microseconds(
        static_cast<int64_t>(latency_ms * 1000));
    proxy.emplace(pc);
    proxy->Start();
    port = proxy->Port();
  }

  LoadConfig lc;
  lc.server = InetAddr::Loopback(port);
  lc.connections = p.concurrency;
  lc.warmup_sec = p.warmup_sec;
  lc.measure_sec = p.measure_sec;
  lc.targets = p.targets;
  PhaseProfiler::Snapshot begin;
  AnatomyRow row;
  lc.on_measure_start = [&] { begin = server->phase_profiler().Snap(); };
  lc.on_measure_end = [&] {
    row.phases = server->phase_profiler().Snap() - begin;
  };
  const LoadResult load = RunLoad(lc);
  row.throughput = load.Throughput();
  if (proxy) proxy->Stop();
  server->Stop();
  return row;
}

}  // namespace

int main() {
  const double seconds = BenchSeconds(1.0);

  for (double latency : {0.0, 2.0}) {
    PrintHeader("Extension 2: request anatomy — mean time per phase "
                "(100KB responses, concurrency 50, latency " +
                TablePrinter::Num(latency, 0) + "ms)");
    TablePrinter table({"architecture", "throughput", "parse_us",
                        "handler_us", "serialize_us", "write_us"});
    for (auto arch :
         {ServerArchitecture::kThreadPerConn, ServerArchitecture::kReactorPoolFix,
          ServerArchitecture::kSingleThread, ServerArchitecture::kMultiLoop,
          ServerArchitecture::kHybrid}) {
      const AnatomyRow row = RunOne(arch, latency, seconds);
      table.AddRow(
          {ArchitectureName(arch), TablePrinter::Num(row.throughput, 0),
           TablePrinter::Num(row.phases.MeanNs(Phase::kParse) / 1000, 1),
           TablePrinter::Num(row.phases.MeanNs(Phase::kHandler) / 1000, 1),
           TablePrinter::Num(row.phases.MeanNs(Phase::kSerialize) / 1000, 1),
           TablePrinter::Num(row.phases.MeanNs(Phase::kWrite) / 1000, 1)});
    }
    table.Print();
    table.PrintCsv("ext02");
  }

  std::printf(
      "\nReading: latency leaves parse/handler/serialize untouched and\n"
      "multiplies only the write phase of the spin-writing designs —\n"
      "the paper's write-spin mechanism, isolated per phase.\n");
  return 0;
}
