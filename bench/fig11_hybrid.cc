// Figure 11: HybridNetty validation. Workload mixes heavy (100 KB) and
// light (0.1 KB) requests; the heavy share sweeps 0%→100%. Normalized
// throughput with HybridNetty as the baseline (1.00), exactly as the
// paper plots it. (a) no added latency; (b) 5 ms one-way latency.
//
// Paper's findings: Hybrid == SingleT-Async at 0% heavy, == NettyServer at
// 100%, and strictly best in between (e.g. +30% over SingleT-Async and
// +10% over NettyServer at 5% heavy); SingleT-Async craters under latency
// whenever heavy requests exist.
#include "bench_common.h"

using namespace hynet;
using namespace hynet::benchx;

int main() {
  const double seconds = BenchSeconds(1.2);
  std::vector<int> heavy_pcts = {0, 5, 10, 25, 50, 75, 100};
  if (BenchQuickMode()) heavy_pcts = {0, 5, 50, 100};
  // (a) LAN-scale 1 ms RTT — the paper's subfigure (a) ran client and
  // server on separate machines, whose real link delay is what makes
  // heavy requests costly for SingleT-Async; bare loopback would hide it.
  // (b) adds 5 ms one-way latency as in the paper.
  std::vector<double> latencies = {1.0, 5.0};
  if (BenchQuickMode()) latencies = {1.0};

  const ServerArchitecture archs[] = {
      ServerArchitecture::kHybrid,
      ServerArchitecture::kSingleThread,
      ServerArchitecture::kMultiLoop,
  };

  for (double latency : latencies) {
    PrintHeader("Figure 11 " +
                std::string(latency <= 1.0 ? "(a) LAN (1ms RTT emulated)"
                                           : "(b) 5ms one-way latency") +
                ": normalized throughput (baseline = HybridNetty)");
    TablePrinter table({"heavy_pct", "HybridNetty", "SingleT-Async",
                        "NettyServer", "hybrid_tput_abs"});

    for (int pct : heavy_pcts) {
      double tput[3] = {0, 0, 0};
      for (int a = 0; a < 3; ++a) {
        BenchPoint p;
        p.server.architecture = archs[a];
        p.concurrency = 100;
        p.measure_sec = seconds;
        p.latency_ms = latency;
        p.targets.clear();
        if (pct < 100) {
          p.targets.push_back({BenchTarget(kSmall, DefaultCpuUs(kSmall)),
                               (100.0 - pct) / 100.0});
        }
        if (pct > 0) {
          p.targets.push_back({BenchTarget(kLarge, DefaultCpuUs(kLarge)),
                               pct / 100.0});
        }
        tput[a] = RunBenchPoint(p).Throughput();
      }
      const double base = tput[0] > 0 ? tput[0] : 1;
      table.AddRow({TablePrinter::Int(pct), TablePrinter::Num(1.0, 2),
                    TablePrinter::Num(tput[1] / base, 2),
                    TablePrinter::Num(tput[2] / base, 2),
                    TablePrinter::Num(tput[0], 0)});
    }
    table.Print();
    table.PrintCsv(latency <= 1.0 ? "fig11a" : "fig11b");
  }

  std::printf(
      "\nExpected shape (paper): Hybrid >= both rivals across the mix;\n"
      "equal to SingleT-Async at 0%% heavy and to NettyServer at 100%%.\n");
  return 0;
}
