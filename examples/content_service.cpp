// content_service: a realistic content-delivery scenario — a catalog of
// pages with Zipf-distributed popularity and heavy-tailed sizes (the
// workload shape the paper cites for real web applications [22]).
//
// Serves the same catalog from every architecture in turn and prints a
// side-by-side comparison, demonstrating why the hybrid wins on realistic
// mixes: most requests are small (light path), a popular few are huge
// (write-spin without the heavy path).
//
//   ./build/examples/content_service            # full comparison
//   HYNET_LOG_LEVEL=INFO ./build/examples/content_service
#include <cstdio>
#include <map>
#include <memory>

#include "client/load_gen.h"
#include "common/rng.h"
#include "core/hybrid_server.h"
#include "metrics/report.h"

using namespace hynet;

namespace {

// Builds a deterministic catalog: page i has size drawn from a heavy-tailed
// distribution (most pages a few KB, a tail of 100KB+ documents). Pages are
// refcounted so every concurrent response shares the catalog's allocation
// (resp.shared_body) instead of copying the page per request.
using Catalog = std::map<std::string, std::shared_ptr<const std::string>>;

Catalog BuildCatalog(int pages) {
  Catalog catalog;
  Rng rng(2024);
  for (int i = 0; i < pages; ++i) {
    size_t size;
    const double u = rng.NextDouble();
    if (u < 0.70) {
      size = 512 + rng.NextBounded(4 * 1024);        // small article
    } else if (u < 0.95) {
      size = 8 * 1024 + rng.NextBounded(24 * 1024);  // media-rich page
    } else {
      size = 100 * 1024 + rng.NextBounded(64 * 1024);  // report/download
    }
    catalog["/page/" + std::to_string(i)] =
        std::make_shared<const std::string>(std::string(size, 'c'));
  }
  return catalog;
}

}  // namespace

int main() {
  const int kPages = 200;
  const auto catalog = BuildCatalog(kPages);

  Handler handler = [&catalog](const HttpRequest& req, HttpResponse& resp) {
    const auto it = catalog.find(req.path);
    if (it == catalog.end()) {
      resp.status = 404;
      resp.reason = "Not Found";
      resp.body = "unknown page";
      return;
    }
    resp.shared_body = it->second;
    resp.SetHeader("Content-Type", "text/html");
    resp.SetHeader("Cache-Control", "max-age=60");
  };

  // Zipf-popularity request mix over the catalog.
  std::vector<WeightedTarget> targets;
  {
    Rng rng(7);
    ZipfGenerator zipf(kPages, 0.99);
    std::map<int, int> hits;
    for (int i = 0; i < 20000; ++i) {
      hits[static_cast<int>(zipf.Next(rng))]++;
    }
    for (const auto& [page, count] : hits) {
      targets.push_back({"/page/" + std::to_string(page),
                         static_cast<double>(count)});
    }
  }

  std::printf("content_service: %d pages, Zipf(0.99) popularity\n", kPages);

  TablePrinter table({"architecture", "throughput", "p50", "p99",
                      "light_path", "heavy_path"});
  for (auto arch :
       {ServerArchitecture::kThreadPerConn, ServerArchitecture::kReactorPool,
        ServerArchitecture::kSingleThread, ServerArchitecture::kMultiLoop,
        ServerArchitecture::kHybrid}) {
    ServerConfig config;
    config.architecture = arch;
    auto server = CreateServer(config, handler);
    server->Start();

    LoadConfig load;
    load.server = InetAddr::Loopback(server->Port());
    load.connections = 32;
    load.warmup_sec = 0.2;
    load.measure_sec = 1.0;
    load.targets = targets;
    const LoadResult result = RunLoad(load);
    const ServerCounters c = server->Snapshot();
    server->Stop();

    table.AddRow(
        {ArchitectureName(arch), TablePrinter::Num(result.Throughput(), 0),
         FormatNanos(static_cast<double>(result.latency.Percentile(0.5))),
         FormatNanos(static_cast<double>(result.latency.Percentile(0.99))),
         TablePrinter::Int(static_cast<int64_t>(c.light_path_responses)),
         TablePrinter::Int(static_cast<int64_t>(c.heavy_path_responses))});
  }
  table.Print();
  std::printf(
      "\nThe hybrid routes the popular small pages inline and the rare\n"
      "large documents through the buffered path.\n");
  return 0;
}
