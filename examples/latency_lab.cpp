// latency_lab: interactive demonstration of the write-spin × latency
// interaction (Sections IV-B and V of the paper).
//
// Starts one server per architecture behind the userspace latency proxy
// and shows how each degrades as the emulated one-way delay grows —
// the Figure 7 experiment as a teaching tool.
//
//   ./build/examples/latency_lab                 # default sweep
//   ./build/examples/latency_lab 3 200           # 3ms delay, 200KB responses
#include <cstdio>
#include <cstdlib>

#include "client/bench_runner.h"
#include "metrics/report.h"

using namespace hynet;

int main(int argc, char** argv) {
  const double single_latency = argc > 1 ? std::atof(argv[1]) : -1;
  const size_t resp_kb = argc > 2
                             ? static_cast<size_t>(std::atoll(argv[2]))
                             : 100;

  std::vector<double> latencies = {0.0, 1.0, 5.0};
  if (single_latency >= 0) latencies = {single_latency};

  std::printf("latency_lab: %zuKB responses, 16KB send buffer, "
              "concurrency 50\n\n", resp_kb);

  TablePrinter table({"latency_ms", "architecture", "throughput",
                      "mean_rt_ms", "writes_per_resp", "zero_writes"});

  for (double latency : latencies) {
    for (auto arch : {ServerArchitecture::kSingleThread,
                      ServerArchitecture::kMultiLoop,
                      ServerArchitecture::kHybrid,
                      ServerArchitecture::kThreadPerConn}) {
      BenchPoint point;
      point.server.architecture = arch;
      point.server.snd_buf_bytes = 16 * 1024;
      point.concurrency = 50;
      point.measure_sec = 1.0;
      point.latency_ms = latency;
      point.targets = {
          {BenchTarget(resp_kb * 1024, DefaultCpuUs(resp_kb * 1024)), 1.0}};
      const BenchPointResult r = RunBenchPoint(point);
      table.AddRow({TablePrinter::Num(latency, 1), ArchitectureName(arch),
                    TablePrinter::Num(r.Throughput(), 0),
                    TablePrinter::Num(r.MeanLatencyMs(), 1),
                    TablePrinter::Num(r.WritesPerResponse(), 1),
                    TablePrinter::Int(static_cast<int64_t>(
                        r.counters.zero_writes))});
    }
  }
  table.Print();
  std::printf(
      "\nWatch SingleT-Async: every millisecond of delay multiplies its\n"
      "response time (the single thread is glued to one ACK-starved\n"
      "connection), while the buffered/capped writers overlap transfers.\n");
  return 0;
}
