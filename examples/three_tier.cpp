// three_tier: boots the full mini-RUBBoS stack (web proxy tier → app tier
// → in-memory DB tier, all over loopback TCP) and runs Markov-chain users
// against it — the paper's Figure 1 scenario as a runnable demo.
//
//   ./build/examples/three_tier                  # thread-based app tier
//   ./build/examples/three_tier async            # reactor+pool app tier
//   ./build/examples/three_tier async 300        # ... with 300 users
#include <cstdio>
#include <cstring>
#include <cstdlib>

#include "metrics/report.h"
#include "rubbos/system.h"

using namespace hynet;
using namespace hynet::rubbos;

int main(int argc, char** argv) {
  const bool async_app = argc > 1 && std::strcmp(argv[1], "async") == 0;
  const int users = argc > 2 ? std::atoi(argv[2]) : 150;

  ThreeTierConfig system_config;
  system_config.app_architecture = async_app
                                       ? ServerArchitecture::kReactorPool
                                       : ServerArchitecture::kThreadPerConn;

  std::printf("three_tier: app tier = %s, %d emulated users\n",
              ArchitectureName(system_config.app_architecture), users);
  std::printf("  [web tier: thread-based proxy]\n");
  std::printf("  [app tier: 24 RUBBoS interactions, JDBC-style DB pool]\n");
  std::printf("  [db  tier: thread-per-connection, in-memory tables]\n\n");

  RubbosWorkloadConfig load;
  load.users = users;
  load.think_time_sec = 0.5;
  load.warmup_sec = 1.0;
  load.measure_sec = 4.0;

  const ThreeTierPointResult result = RunThreeTierPoint(system_config, load);

  std::printf("throughput      : %.1f req/s\n", result.Throughput());
  std::printf("response time   : %s\n",
              result.workload.response_time.Summary().c_str());
  std::printf("app ctx switches: %.0f /s\n",
              result.app_activity.CtxSwitchesPerSec());
  std::printf("errors          : %llu\n",
              static_cast<unsigned long long>(result.workload.errors));
  std::printf(
      "\nRun both variants and compare — the async connector context-\n"
      "switches several times more per second at the same load (Fig. 1).\n");
  return 0;
}
