// three_tier: boots the full mini-RUBBoS stack (web proxy tier → app tier
// → in-memory DB tier, all over loopback TCP) and runs Markov-chain users
// against it — the paper's Figure 1 scenario as a runnable demo, plus the
// async service mesh (DESIGN §14) behind --transport rpc.
//
//   ./build/examples/three_tier                  # thread-based app tier
//   ./build/examples/three_tier async            # reactor+pool app tier
//   ./build/examples/three_tier async 300        # ... with 300 users
//   ./build/examples/three_tier --transport rpc --fanout 2 --users 300
//   ./build/examples/three_tier --transport rpc --fanout 2 \
//       --cache-ttl-ms 200                       # + app-tier response cache
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <optional>
#include <string>

#include "metrics/cpu_sample.h"

#include "metrics/report.h"
#include "rubbos/system.h"

using namespace hynet;
using namespace hynet::rubbos;

int main(int argc, char** argv) {
  bool async_app = false;
  int users = 150;
  std::string transport = "sync";
  int fanout = 1;
  int cache_ttl_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (arg == "async") {
      async_app = true;  // positional compat with the original demo
    } else if (arg == "--transport") {
      transport = value();
    } else if (arg == "--fanout") {
      fanout = std::atoi(value());
    } else if (arg == "--cache-ttl-ms") {
      cache_ttl_ms = std::atoi(value());
    } else if (arg == "--users") {
      users = std::atoi(value());
    } else if (arg[0] != '-') {
      users = std::atoi(arg.c_str());  // positional users
    } else {
      std::fprintf(stderr,
                   "usage: three_tier [async] [users]\n"
                   "                  [--transport sync|rpc] [--fanout N]\n"
                   "                  [--cache-ttl-ms N] [--users N]\n");
      return 2;
    }
  }

  ThreeTierConfig system_config;
  system_config.app_architecture = async_app
                                       ? ServerArchitecture::kReactorPool
                                       : ServerArchitecture::kThreadPerConn;
  system_config.transport = transport;
  system_config.fanout = fanout;
  system_config.app_cache_ttl_ms = cache_ttl_ms;
  const bool rpc = transport == "rpc";

  std::printf("three_tier: app tier = %s, %d emulated users\n",
              ArchitectureName(system_config.app_architecture), users);
  if (rpc) {
    std::printf("  [mesh: web→app and app→db over multiplexed async RPC, "
                "fan-out %d]\n", fanout);
    if (cache_ttl_ms > 0)
      std::printf("  [app-tier response cache: TTL %d ms, sharded, "
                  "zero-copy hits]\n", cache_ttl_ms);
  } else {
    std::printf("  [web tier: thread-based proxy]\n");
    std::printf("  [app tier: 24 RUBBoS interactions, JDBC-style DB pool]\n");
  }
  std::printf("  [db  tier: %s, in-memory tables]\n\n",
              rpc ? "event loops on the RPC plane" : "thread-per-connection");

  ThreeTierSystem system(system_config);
  system.Start();

  RubbosWorkloadConfig load;
  load.front = InetAddr::Loopback(system.FrontPort());
  load.users = users;
  load.think_time_sec = 0.5;
  load.warmup_sec = 1.0;
  load.measure_sec = 4.0;

  // Scope app-tier /proc sampling to the measurement window, as
  // RunThreeTierPoint does (connection threads spawn during warmup).
  std::optional<ServerActivitySampler> sampler;
  ActivityDelta app_activity;
  load.on_measure_start = [&] {
    sampler.emplace(system.AppThreadIds());
    sampler->Start();
  };
  load.on_measure_end = [&] { app_activity = sampler->Stop(); };
  const RubbosWorkloadResult result = RunRubbosWorkload(load);

  std::printf("throughput      : %.1f req/s\n", result.Throughput());
  std::printf("response time   : %s\n",
              result.response_time.Summary().c_str());
  std::printf("app ctx switches: %.0f /s\n", app_activity.CtxSwitchesPerSec());
  std::printf("errors          : %llu\n",
              static_cast<unsigned long long>(result.errors));
  if (rpc) {
    const ServerCounters web = system.WebSnapshot();
    const ServerCounters app = system.AppSnapshot();
    std::printf("fan-out groups  : %llu (%llu partial failures)\n",
                static_cast<unsigned long long>(web.mesh_fanout_calls),
                static_cast<unsigned long long>(web.mesh_partial_failures));
    std::printf("app mux peak    : %llu in-flight on one connection\n",
                static_cast<unsigned long long>(app.rpc_inflight_peak));
    if (const ResponseCache* cache = system.app_cache()) {
      const uint64_t lookups = cache->Hits() + cache->Misses();
      std::printf("cache hit rate  : %.2f (%llu hits / %llu lookups)\n",
                  lookups > 0
                      ? static_cast<double>(cache->Hits()) / lookups
                      : 0.0,
                  static_cast<unsigned long long>(cache->Hits()),
                  static_cast<unsigned long long>(lookups));
    }
  }
  system.Stop();

  std::printf(
      rpc ? "\nCompare against --transport sync at the same load: past the\n"
            "saturation point the sync chain queues whole requests on\n"
            "blocked pool connections while the mesh multiplexes them\n"
            "(DESIGN §14, bench/micro_mesh).\n"
          : "\nRun both variants and compare — the async connector context-\n"
            "switches several times more per second at the same load "
            "(Fig. 1).\n");
  return 0;
}
