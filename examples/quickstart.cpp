// Quickstart: boot a HybridNetty server, register handlers, hit it with a
// short closed-loop load, and print what the adaptive core learned.
//
//   ./build/examples/quickstart
#include <cstdio>

#include "client/load_gen.h"
#include "core/hybrid_server.h"

using namespace hynet;

int main() {
  // 1. Describe the server: the hybrid architecture with default knobs
  //    (16 KB send buffers, Netty writeSpin cap of 16).
  ServerConfig config;
  config.architecture = ServerArchitecture::kHybrid;
  config.port = 0;  // ephemeral

  // 2. Register the application handler. It runs on an event-loop thread,
  //    so it must not block; CPU work is fine.
  Handler handler = [](const HttpRequest& req, HttpResponse& resp) {
    if (req.path == "/hello") {
      resp.body = "hello from hynet\n";
      resp.SetHeader("Content-Type", "text/plain");
    } else if (req.path == "/report") {
      // A "heavy" endpoint: ~120 KB response that will write-spin on the
      // default 16 KB TCP send buffer — the hybrid core will learn this.
      resp.body.assign(120 * 1024, 'r');
    } else {
      resp.status = 404;
      resp.reason = "Not Found";
      resp.body = "no such route\n";
    }
  };

  auto server = std::make_unique<HybridServer>(config, handler);
  server->Start();
  std::printf("hybrid server listening on 127.0.0.1:%u\n", server->Port());

  // 3. Drive it with the built-in closed-loop client: 90%% light, 10%% heavy.
  LoadConfig load;
  load.server = InetAddr::Loopback(server->Port());
  load.connections = 16;
  load.warmup_sec = 0.2;
  load.measure_sec = 1.0;
  load.targets = {{"/hello", 0.9}, {"/report", 0.1}};
  const LoadResult result = RunLoad(load);

  std::printf("throughput : %.0f req/s\n", result.Throughput());
  std::printf("latency    : %s\n", result.latency.Summary().c_str());

  // 4. Inspect what the adaptive core learned at runtime.
  const ServerCounters c = server->Snapshot();
  std::printf("light path : %llu responses\n",
              static_cast<unsigned long long>(c.light_path_responses));
  std::printf("heavy path : %llu responses\n",
              static_cast<unsigned long long>(c.heavy_path_responses));
  std::printf("classifier : %zu request types, %llu reclassifications\n",
              server->classifier().Size(),
              static_cast<unsigned long long>(
                  server->classifier().Reclassifications()));

  server->Stop();
  return 0;
}
