// Observability-plane tests: MetricsRegistry primitives, the admin
// endpoint (/metrics, /stats.json, /healthz), scrape-vs-Snapshot
// consistency across all eight architectures under concurrent load, and
// the ServerConfig::Validate() gate on the unified factory.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "client/bench_runner.h"
#include "metrics/registry.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "servers/server.h"

namespace hynet {
namespace {

// ---------------------------------------------------------------------------
// Registry primitives.

TEST(MetricsRegistry, CounterSumsAcrossThreads) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("test_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  // Get-or-create returns the same instance.
  EXPECT_EQ(&reg.GetCounter("test_total"), &c);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
  MetricsRegistry reg;
  Gauge& g = reg.GetGauge("test_gauge");
  g.Set(41);
  g.Add(1);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.Value(), -8);
}

TEST(MetricsRegistry, HistogramPercentilesWithinBucketResolution) {
  MetricsRegistry reg;
  HistogramMetric& h = reg.GetHistogram("test_hist");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h, t] {
      // Each thread records an interleaved quarter of 1..1000.
      for (int64_t v = t + 1; v <= 1000; v += 4) h.Record(v);
    });
  }
  for (auto& t : threads) t.join();
  const HistogramData data = h.Snapshot();
  EXPECT_EQ(data.count, 1000u);
  EXPECT_EQ(data.sum, 1000 * 1001 / 2);
  EXPECT_EQ(data.max, 1000);
  EXPECT_NEAR(data.Mean(), 500.5, 0.01);
  // Percentile() returns a bucket upper bound; the log-linear geometry
  // keeps relative error under ~3% (32 sub-buckets per group).
  EXPECT_GE(data.Percentile(0.50), 500);
  EXPECT_LE(data.Percentile(0.50), 540);
  EXPECT_GE(data.Percentile(0.99), 990);
  EXPECT_LE(data.Percentile(0.99), 1060);
}

TEST(MetricsRegistry, CollectorsMergeByName) {
  MetricsRegistry reg;
  reg.GetCounter("merged_total").Add(5);  // native contribution
  const size_t id_a = reg.AddCollector([](MetricsBatch& b) {
    b.AddCounter("merged_total", 10);
    b.SetGauge("mode", 1);
  });
  reg.AddCollector([](MetricsBatch& b) {
    b.AddCounter("merged_total", 100);
    b.AddCounter("only_b_total", 7);
  });
  MetricsSnapshot snap = reg.Scrape();
  EXPECT_EQ(snap.CounterValue("merged_total"), 115u);
  EXPECT_EQ(snap.CounterValue("only_b_total"), 7u);
  EXPECT_EQ(snap.CounterValue("absent_total"), 0u);

  reg.RemoveCollector(id_a);
  snap = reg.Scrape();
  EXPECT_EQ(snap.CounterValue("merged_total"), 105u);
}

TEST(ServerCountersView, RowsCoverEveryField) {
  ServerCounters c;
  c.requests_handled = 3;
  const auto rows = CounterRows(c);
  EXPECT_EQ(rows.size(), kServerCounterFieldCount);
  bool found = false;
  for (const auto& [name, value] : rows) {
    if (name == "requests_handled") {
      found = true;
      EXPECT_EQ(value, 3u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_LT(LifecycleCounterRows(c).size(), rows.size());
}

// ---------------------------------------------------------------------------
// Prometheus text rendering.

// A valid exposition line is `# ...` or `name[{labels}] value` with a
// numeric value.
void ExpectPrometheusParses(const std::string& text) {
  size_t pos = 0;
  int metric_lines = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# TYPE ", 0) == 0 ||
                  line.rfind("# HELP ", 0) == 0)
          << "bad comment line: " << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << "no value in line: " << line;
    const std::string name = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    ASSERT_FALSE(name.empty()) << line;
    // Name part: identifier, optionally with {label="v"}.
    const char first = name[0];
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(first)) ||
                first == '_')
        << "bad metric name: " << line;
    char* end = nullptr;
    std::strtod(value.c_str(), &end);
    EXPECT_EQ(*end, '\0') << "non-numeric value in line: " << line;
    metric_lines++;
  }
  EXPECT_GT(metric_lines, 0);
}

TEST(MetricsRegistry, PrometheusTextParsesLineByLine) {
  MetricsRegistry reg;
  reg.GetCounter("reqs_total").Add(12);
  reg.GetGauge("depth").Set(-3);
  HistogramMetric& h = reg.GetHistogram("lat_ns");
  for (int64_t v = 1; v <= 100; ++v) h.Record(v);
  const std::string text = reg.PrometheusText();
  ExpectPrometheusParses(text);
  EXPECT_NE(text.find("# TYPE reqs_total counter"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 12"), std::string::npos);
  EXPECT_NE(text.find("depth -3"), std::string::npos);
  EXPECT_NE(text.find("lat_ns{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count 100"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Admin endpoint + scrape-vs-Snapshot across all architectures.

struct AdminReply {
  int status = 0;
  std::string body;
};

AdminReply AdminGet(uint16_t port, const std::string& path) {
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(port));
  const std::string wire = BuildGetRequest(path, /*keep_alive=*/false);
  size_t off = 0;
  while (off < wire.size()) {
    const IoResult r =
        WriteFd(sock.fd(), wire.data() + off, wire.size() - off);
    if (r.Fatal()) throw std::runtime_error("admin write failed");
    off += static_cast<size_t>(r.n);
  }
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  while (true) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) break;
    if (st == ParseStatus::kError) throw std::runtime_error("admin parse");
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    if (r.n <= 0) throw std::runtime_error("admin connection lost");
    in.Append(buf, static_cast<size_t>(r.n));
  }
  return {parser.response().status, parser.response().body};
}

void FetchManyObs(uint16_t port, const std::string& target, int n) {
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(port));
  const std::string wire = BuildGetRequest(target);
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  for (int i = 0; i < n; ++i) {
    size_t off = 0;
    while (off < wire.size()) {
      const IoResult r =
          WriteFd(sock.fd(), wire.data() + off, wire.size() - off);
      ASSERT_FALSE(r.Fatal());
      off += static_cast<size_t>(r.n);
    }
    while (true) {
      const ParseStatus st = parser.Parse(in);
      if (st == ParseStatus::kComplete) break;
      ASSERT_NE(st, ParseStatus::kError);
      const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
      ASSERT_GT(r.n, 0);
      in.Append(buf, static_cast<size_t>(r.n));
    }
  }
}

const ServerArchitecture kAllArchitectures[] = {
    ServerArchitecture::kThreadPerConn,  ServerArchitecture::kReactorPool,
    ServerArchitecture::kReactorPoolFix, ServerArchitecture::kSingleThread,
    ServerArchitecture::kMultiLoop,      ServerArchitecture::kHybrid,
    ServerArchitecture::kStaged,
    ServerArchitecture::kSingleThreadNCopy,
};

TEST(AdminPlane, ScrapeMatchesSnapshotUnderLoadForEveryArchitecture) {
  for (const ServerArchitecture arch : kAllArchitectures) {
    SCOPED_TRACE(ArchitectureName(arch));
    ServerConfig config;
    config.architecture = arch;
    config.worker_threads = 4;
    config.admin_port = 0;  // ephemeral
    auto server = CreateServer(config, MakeBenchHandler());
    server->Start();
    ASSERT_NE(server->AdminPort(), 0);

    // Concurrent load while the admin endpoint is scraped.
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
      clients.emplace_back(
          [&server] { FetchManyObs(server->Port(), BenchTarget(256, 0), 30); });
    }
    for (int i = 0; i < 3; ++i) {
      const AdminReply metrics = AdminGet(server->AdminPort(), "/metrics");
      EXPECT_EQ(metrics.status, 200);
      ExpectPrometheusParses(metrics.body);
      const AdminReply health = AdminGet(server->AdminPort(), "/healthz");
      EXPECT_EQ(health.status, 200);
    }
    for (auto& t : clients) t.join();
    // Let in-flight server-side bookkeeping settle, then compare a scrape
    // against the legacy Snapshot with no traffic in between.
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    const ServerCounters from_registry =
        CountersFromRegistry(server->metrics().Scrape());
    const ServerCounters direct = server->Snapshot();
    const auto reg_rows = CounterRows(from_registry);
    const auto direct_rows = CounterRows(direct);
    ASSERT_EQ(reg_rows.size(), direct_rows.size());
    for (size_t i = 0; i < reg_rows.size(); ++i) {
      EXPECT_EQ(reg_rows[i].second, direct_rows[i].second)
          << "counter " << reg_rows[i].first;
    }
    EXPECT_GE(direct.requests_handled, 120u);

    // Native hot-path histograms recorded into the same registry.
    const MetricsSnapshot snap = server->metrics().Scrape();
    const HistogramData* lat = snap.FindHistogram("server_request_latency_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_GT(lat->count, 0u);
    const HistogramData* writes =
        snap.FindHistogram("server_writes_per_response");
    ASSERT_NE(writes, nullptr);
    EXPECT_GT(writes->count, 0u);

    // The zero-copy outbound path is live in every architecture: writes
    // went through writev, and read buffers were checked out of the pool.
    EXPECT_GT(direct.writev_calls, 0u);
    EXPECT_GE(direct.iov_segments, direct.writev_calls);
    EXPECT_GT(snap.CounterValue("buffer_pool_misses"), 0u);

    // Unknown paths 404; stats.json carries the same counters.
    EXPECT_EQ(AdminGet(server->AdminPort(), "/nope").status, 404);
    const AdminReply stats = AdminGet(server->AdminPort(), "/stats.json");
    EXPECT_EQ(stats.status, 200);
    EXPECT_NE(stats.body.find("\"server_requests_handled\""),
              std::string::npos);
    EXPECT_NE(stats.body.find("\"server_writev_calls\""), std::string::npos);
    EXPECT_NE(stats.body.find("\"buffer_pool_hits\""), std::string::npos);

    server->Stop();
  }
}

TEST(AdminPlane, HealthzReportsDrainingDuringShutdown) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  config.admin_port = 0;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  ASSERT_EQ(AdminGet(server->AdminPort(), "/healthz").status, 200);

  // A half-sent request keeps the connection non-idle, so the drain holds
  // until its deadline instead of finishing instantly.
  Socket straggler = Socket::CreateTcp(false);
  straggler.Connect(InetAddr::Loopback(server->Port()));
  const std::string partial = "GET /bench?size=64 HTTP/1.1\r\n";
  ASSERT_FALSE(
      WriteFd(straggler.fd(), partial.data(), partial.size()).Fatal());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  const uint16_t admin_port = server->AdminPort();
  std::thread drainer([&server] {
    (void)server->Shutdown(std::chrono::milliseconds(700));
  });
  bool saw_draining = false;
  for (int i = 0; i < 60 && !saw_draining; ++i) {
    try {
      const AdminReply health = AdminGet(admin_port, "/healthz");
      if (health.status == 503) {
        saw_draining = true;
        EXPECT_NE(health.body.find("draining"), std::string::npos);
      }
    } catch (const std::exception&) {
      break;  // admin plane already torn down: drain finished
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  drainer.join();
  EXPECT_TRUE(saw_draining);
}

// ---------------------------------------------------------------------------
// The Validate() gate.

TEST(ServerConfigValidate, AcceptsDefaults) {
  EXPECT_TRUE(ServerConfig{}.Validate().empty());
}

TEST(ServerConfigValidate, RejectsEachBadConfig) {
  const auto expect_invalid = [](auto mutate, const char* what) {
    ServerConfig config;
    mutate(config);
    EXPECT_FALSE(config.Validate().empty()) << what;
    EXPECT_THROW(CreateServer(config, MakeBenchHandler()),
                 std::invalid_argument)
        << what;
  };
  expect_invalid([](ServerConfig& c) { c.worker_threads = 0; },
                 "worker_threads");
  expect_invalid([](ServerConfig& c) { c.event_loops = 0; }, "event_loops");
  expect_invalid([](ServerConfig& c) { c.stage_threads = -1; },
                 "stage_threads");
  expect_invalid([](ServerConfig& c) { c.ncopy = 0; }, "ncopy");
  expect_invalid([](ServerConfig& c) { c.hybrid_heavy_write_threshold = 0; },
                 "hybrid_heavy_write_threshold");
  expect_invalid([](ServerConfig& c) { c.snd_buf_bytes = -1; },
                 "snd_buf_bytes");
  expect_invalid([](ServerConfig& c) { c.idle_timeout_ms = -5; },
                 "idle_timeout_ms");
  expect_invalid([](ServerConfig& c) { c.header_timeout_ms = -5; },
                 "header_timeout_ms");
  expect_invalid([](ServerConfig& c) { c.write_stall_timeout_ms = -5; },
                 "write_stall_timeout_ms");
  expect_invalid([](ServerConfig& c) { c.max_connections = -1; },
                 "max_connections");
  expect_invalid(
      [](ServerConfig& c) {
        c.outbound_high_water_bytes = 100;
        c.outbound_low_water_bytes = 200;
      },
      "watermarks");
  expect_invalid([](ServerConfig& c) { c.admin_port = 65536; }, "admin_port");
  expect_invalid(
      [](ServerConfig& c) {
        c.port = 8080;
        c.admin_port = 8080;
      },
      "admin_port == port");

  // The thrown message lists every problem.
  ServerConfig config;
  config.worker_threads = 0;
  config.ncopy = 0;
  try {
    CreateServer(config, MakeBenchHandler());
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("worker_threads"), std::string::npos);
    EXPECT_NE(what.find("ncopy"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Sharded REUSEPORT deployment: the parent registry is a merge of the
// per-shard registries, performed at scrape time.

int64_t GaugeValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return v;
  }
  return 0;
}

TEST(ShardedServer, MergedScrapeSumsShardCountersAndGauges) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  config.shards = 2;
  config.admin_port = 0;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  ASSERT_NE(server->AdminPort(), 0);

  // Fresh connections so the kernel's REUSEPORT hash spreads work across
  // both shards; held open so the merged conn gauges have something to
  // count.
  constexpr int kConns = 8;
  constexpr int kPerConn = 5;
  std::vector<Socket> held;
  for (int i = 0; i < kConns; ++i) {
    Socket sock = Socket::CreateTcp(false);
    sock.Connect(InetAddr::Loopback(server->Port()));
    const std::string wire = BuildGetRequest(BenchTarget(128, 0));
    HttpResponseParser parser;
    ByteBuffer in;
    char buf[4096];
    for (int r = 0; r < kPerConn; ++r) {
      size_t off = 0;
      while (off < wire.size()) {
        const IoResult w =
            WriteFd(sock.fd(), wire.data() + off, wire.size() - off);
        ASSERT_FALSE(w.Fatal());
        off += static_cast<size_t>(w.n);
      }
      while (parser.Parse(in) == ParseStatus::kNeedMore) {
        const IoResult rd = ReadFd(sock.fd(), buf, sizeof(buf));
        ASSERT_GT(rd.n, 0);
        in.Append(buf, static_cast<size_t>(rd.n));
      }
      ASSERT_EQ(parser.response().status, 200);
      parser.Reset();
    }
    held.push_back(std::move(sock));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Snapshot() sums shard counter structs directly; the scrape goes the
  // other way (per-shard registry scrapes merged by name). Both paths
  // must agree on every exported counter — that IS the sum-of-shards
  // equality, checked without reaching into shard internals.
  const ServerCounters from_registry =
      CountersFromRegistry(server->metrics().Scrape());
  const ServerCounters direct = server->Snapshot();
  const auto reg_rows = CounterRows(from_registry);
  const auto direct_rows = CounterRows(direct);
  ASSERT_EQ(reg_rows.size(), direct_rows.size());
  for (size_t i = 0; i < reg_rows.size(); ++i) {
    EXPECT_EQ(reg_rows[i].second, direct_rows[i].second)
        << "counter " << reg_rows[i].first;
  }
  EXPECT_EQ(direct.requests_handled,
            static_cast<uint64_t>(kConns) * kPerConn);

  // Merged gauges: all held connections appear in one conn_count, and the
  // derived bytes/conn view is recomputed from the merged totals.
  const MetricsSnapshot snap = server->metrics().Scrape();
  EXPECT_EQ(GaugeValue(snap, "shards"), 2);
  EXPECT_EQ(GaugeValue(snap, "conn_count"), kConns);
  EXPECT_GT(GaugeValue(snap, "conn_bytes_total"), 0);
  EXPECT_EQ(GaugeValue(snap, "conn_bytes_per_conn"),
            GaugeValue(snap, "conn_bytes_total") / kConns);

  // The admin plane serves the merged view.
  const AdminReply stats = AdminGet(server->AdminPort(), "/stats.json");
  EXPECT_EQ(stats.status, 200);
  EXPECT_NE(stats.body.find("\"shards\":2"), std::string::npos);

  held.clear();
  server->Stop();
}

}  // namespace
}  // namespace hynet
