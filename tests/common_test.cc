// Unit tests for common/: buffers, queues, histograms, RNG/Zipf, env,
// logging, CPU-burn calibration.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/payload.h"
#include "common/env.h"
#include "common/fd.h"
#include "common/histogram.h"
#include "common/logging.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/thread_util.h"

namespace hynet {
namespace {

TEST(ByteBuffer, StartsEmpty) {
  ByteBuffer buf;
  EXPECT_EQ(buf.ReadableBytes(), 0u);
  EXPECT_TRUE(buf.Empty());
  EXPECT_GT(buf.WritableBytes(), 0u);
}

TEST(ByteBuffer, AppendThenView) {
  ByteBuffer buf;
  buf.Append("hello ");
  buf.Append("world");
  EXPECT_EQ(buf.View(), "hello world");
  EXPECT_EQ(buf.ReadableBytes(), 11u);
}

TEST(ByteBuffer, ConsumeAdvancesAndResets) {
  ByteBuffer buf;
  buf.Append("abcdef");
  buf.Consume(3);
  EXPECT_EQ(buf.View(), "def");
  buf.Consume(3);
  // Fully consumed: cursors reset so the space is reused.
  EXPECT_TRUE(buf.Empty());
  buf.Append("x");
  EXPECT_EQ(buf.View(), "x");
}

TEST(ByteBuffer, GrowsPastInitialCapacity) {
  ByteBuffer buf(16);
  const std::string big(100000, 'z');
  buf.Append(big);
  EXPECT_EQ(buf.ReadableBytes(), big.size());
  EXPECT_EQ(buf.View(), big);
}

TEST(ByteBuffer, CompactReclaimsConsumedSpace) {
  ByteBuffer buf(64);
  buf.Append(std::string(48, 'a'));
  buf.Consume(40);
  buf.EnsureWritable(50);  // fits after compaction without growing
  EXPECT_LE(buf.Capacity(), 64u);
  EXPECT_EQ(buf.View(), std::string(8, 'a'));
}

TEST(ByteBuffer, ProducedAfterExternalWrite) {
  ByteBuffer buf;
  buf.EnsureWritable(4);
  std::memcpy(buf.WritePtr(), "abcd", 4);
  buf.Produced(4);
  EXPECT_EQ(buf.View(), "abcd");
}

TEST(ByteBuffer, GrowthIsGeometric) {
  // A stream of small appends must reallocate O(log n) times, not O(n):
  // each growth at least doubles the storage.
  ByteBuffer buf(16);
  size_t capacity = buf.Capacity();
  int growths = 0;
  for (int i = 0; i < 100000; ++i) {
    buf.Append("abcdefgh");
    if (buf.Capacity() != capacity) {
      EXPECT_GE(buf.Capacity(), 2 * capacity);
      capacity = buf.Capacity();
      growths++;
    }
  }
  EXPECT_LE(growths, 20);
}

TEST(ByteBuffer, GrowthJumpsStraightToLargeNeed) {
  // One append larger than double the current storage grows to exactly
  // the needed size rather than doubling repeatedly.
  ByteBuffer buf(16);
  buf.Append(std::string(1000, 'x'));
  EXPECT_EQ(buf.Capacity(), 1000u);
}

TEST(ByteBuffer, ShrinkToFitReleasesExcessCapacity) {
  ByteBuffer buf;
  buf.Append(std::string(256 * 1024, 'y'));
  buf.ConsumeAll();
  EXPECT_GT(buf.Capacity(), ByteBuffer::kInitialCapacity);
  buf.ShrinkToFit();
  EXPECT_EQ(buf.Capacity(), ByteBuffer::kInitialCapacity);
}

TEST(ByteBuffer, ShrinkToFitKeepsUnreadBytes) {
  ByteBuffer buf;
  const std::string payload(8000, 'p');
  buf.Append(std::string(64 * 1024, 'q'));
  buf.Consume(64 * 1024);
  buf.Append(payload);
  buf.ShrinkToFit();
  EXPECT_EQ(buf.View(), payload);
  EXPECT_EQ(buf.Capacity(), payload.size());
}

TEST(Payload, ThreeSegmentsFlattenInWireOrder) {
  auto body = std::make_shared<const std::string>("BODY");
  const Payload p("HEAD", body, "TAIL");
  EXPECT_EQ(p.size(), 12u);
  EXPECT_EQ(p.Flatten(), "HEADBODYTAIL");
  EXPECT_EQ(p.head(), "HEAD");
  EXPECT_EQ(p.body(), "BODY");
  EXPECT_EQ(p.tail(), "TAIL");
}

TEST(Payload, CopySharesTheBodyAllocation) {
  auto body = std::make_shared<const std::string>(std::string(100000, 'b'));
  const Payload a("h", body);
  const Payload b = a;
  EXPECT_EQ(a.shared_body().get(), b.shared_body().get());
  EXPECT_EQ(body.use_count(), 3);  // local + two payloads
}

TEST(Payload, FillIovSkipsExhaustedSegments) {
  auto body = std::make_shared<const std::string>("BODY");
  const Payload p("HEAD", body, "TAIL");
  struct iovec iov[Payload::kMaxSegments];
  // No offset: all three segments.
  ASSERT_EQ(p.FillIov(0, iov, Payload::kMaxSegments), 3u);
  EXPECT_EQ(iov[0].iov_len, 4u);
  // Offset mid-head.
  ASSERT_EQ(p.FillIov(2, iov, Payload::kMaxSegments), 3u);
  EXPECT_EQ(std::string_view(static_cast<char*>(iov[0].iov_base),
                             iov[0].iov_len),
            "AD");
  // Offset mid-body: head is skipped entirely.
  ASSERT_EQ(p.FillIov(6, iov, Payload::kMaxSegments), 2u);
  EXPECT_EQ(std::string_view(static_cast<char*>(iov[0].iov_base),
                             iov[0].iov_len),
            "DY");
  EXPECT_EQ(std::string_view(static_cast<char*>(iov[1].iov_base),
                             iov[1].iov_len),
            "TAIL");
  // Offset at the very end: nothing left.
  EXPECT_EQ(p.FillIov(12, iov, Payload::kMaxSegments), 0u);
}

TEST(Payload, FillIovRespectsMaxIov) {
  auto body = std::make_shared<const std::string>("BODY");
  const Payload p("HEAD", body, "TAIL");
  struct iovec iov[1];
  ASSERT_EQ(p.FillIov(0, iov, 1), 1u);
  EXPECT_EQ(std::string_view(static_cast<char*>(iov[0].iov_base),
                             iov[0].iov_len),
            "HEAD");
}

TEST(Payload, FromStringIsSingleSegment) {
  const Payload p = Payload::FromString("wire bytes");
  struct iovec iov[Payload::kMaxSegments];
  EXPECT_EQ(p.FillIov(0, iov, Payload::kMaxSegments), 1u);
  EXPECT_EQ(p.Flatten(), "wire bytes");
  EXPECT_FALSE(p.shared_body());
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BlockingQueue, TryPopOnEmptyReturnsNullopt) {
  BlockingQueue<int> q;
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(BlockingQueue, CloseDrainsRemainingItems) {
  BlockingQueue<int> q;
  q.Push(7);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 7);   // drained after close
  EXPECT_FALSE(q.Pop().has_value());  // then closed
}

TEST(BlockingQueue, BlockedConsumerWakesOnPush) {
  BlockingQueue<int> q;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.Push(42);
  });
  EXPECT_EQ(q.Pop().value(), 42);  // blocks until producer pushes
  producer.join();
}

TEST(BlockingQueue, ManyProducersManyConsumers) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 500;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  std::atomic<int64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q] {
      for (int i = 1; i <= kPerProducer; ++i) q.Push(i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.fetch_add(1) < kProducers * kPerProducer) {
        auto v = q.Pop();
        if (!v) break;
        sum += *v;
      }
      consumed.fetch_sub(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(sum.load(),
            int64_t{kProducers} * kPerProducer * (kPerProducer + 1) / 2);
}

TEST(Histogram, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(1'000'000);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 1'000'000);
  EXPECT_EQ(h.Max(), 1'000'000);
  // Log-bucketed: percentile within ~3.2% of the true value.
  EXPECT_NEAR(static_cast<double>(h.Percentile(0.5)), 1e6, 1e6 * 0.04);
}

TEST(Histogram, PercentilesOrdered) {
  Histogram h;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i) {
    h.Record(static_cast<int64_t>(rng.NextBounded(10'000'000)));
  }
  const int64_t p50 = h.Percentile(0.50);
  const int64_t p90 = h.Percentile(0.90);
  const int64_t p99 = h.Percentile(0.99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.Max());
  // Uniform distribution: p50 near the midpoint.
  EXPECT_NEAR(static_cast<double>(p50), 5e6, 5e5);
}

TEST(Histogram, MergeEqualsCombinedRecording) {
  Histogram a, b, combined;
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = static_cast<int64_t>(rng.NextBounded(1'000'000));
    (i % 2 ? a : b).Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.Count(), combined.Count());
  EXPECT_EQ(a.Max(), combined.Max());
  EXPECT_EQ(a.Min(), combined.Min());
  EXPECT_EQ(a.Percentile(0.9), combined.Percentile(0.9));
}

TEST(Histogram, HugeValuesDoNotOverflowBuckets) {
  Histogram h;
  h.Record(int64_t{1} << 60);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_GT(h.Percentile(1.0), 0);
}

TEST(FormatNanosTest, PicksAdaptiveUnits) {
  EXPECT_EQ(FormatNanos(500), "500ns");
  EXPECT_EQ(FormatNanos(1500), "1.5us");
  EXPECT_EQ(FormatNanos(2.5e6), "2.50ms");
  EXPECT_EQ(FormatNanos(3.1e9), "3.10s");
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.NextBounded(17), 17u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(13);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SamplesInRangeAndSkewedByTheta) {
  const double theta = GetParam();
  Rng rng(17);
  ZipfGenerator zipf(1000, theta);
  std::vector<int> counts(1000, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const uint64_t v = zipf.Next(rng);
    ASSERT_LT(v, 1000u);
    counts[v]++;
  }
  const double head_share =
      static_cast<double>(counts[0] + counts[1] + counts[2]) / kN;
  if (theta == 0.0) {
    EXPECT_LT(head_share, 0.01);  // uniform: 3/1000 plus noise
  } else {
    EXPECT_GT(head_share, 0.05);  // skewed: head items dominate
  }
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfTest,
                         ::testing::Values(0.0, 0.8, 0.99, 1.2));

TEST(Env, ParsesTypes) {
  ::setenv("HYNET_TEST_INT", "42", 1);
  ::setenv("HYNET_TEST_DOUBLE", "2.5", 1);
  ::setenv("HYNET_TEST_BOOL", "false", 1);
  ::setenv("HYNET_TEST_STRING", "abc", 1);
  EXPECT_EQ(EnvInt("HYNET_TEST_INT", 0), 42);
  EXPECT_DOUBLE_EQ(EnvDouble("HYNET_TEST_DOUBLE", 0), 2.5);
  EXPECT_FALSE(EnvBool("HYNET_TEST_BOOL", true));
  EXPECT_EQ(EnvString("HYNET_TEST_STRING", ""), "abc");
}

TEST(Env, FallsBackOnUnsetAndInvalid) {
  ::unsetenv("HYNET_TEST_MISSING");
  ::setenv("HYNET_TEST_BAD_INT", "not-a-number", 1);
  EXPECT_EQ(EnvInt("HYNET_TEST_MISSING", 7), 7);
  EXPECT_EQ(EnvInt("HYNET_TEST_BAD_INT", 9), 9);
  EXPECT_TRUE(EnvBool("HYNET_TEST_MISSING", true));
}

TEST(ScopedFdTest, ClosesOnDestruction) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  {
    ScopedFd a(fds[0]);
    ScopedFd b(fds[1]);
    EXPECT_TRUE(a.valid());
  }
  // Both ends closed: closing again must fail.
  EXPECT_EQ(::close(fds[0]), -1);
  EXPECT_EQ(::close(fds[1]), -1);
}

TEST(ScopedFdTest, MoveTransfersOwnership) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ScopedFd a(fds[0]);
  ScopedFd b(fds[1]);
  ScopedFd c(std::move(a));
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): testing it
  EXPECT_EQ(c.get(), fds[0]);
  const int released = c.Release();
  EXPECT_EQ(released, fds[0]);
  EXPECT_FALSE(c.valid());
  ::close(released);
}

TEST(BurnCpu, BurnsApproximatelyRequestedTime) {
  CalibrateCpuBurn();
  const auto t0 = Now();
  BurnCpuMicros(20000);  // 20 ms: long enough to dominate scheduler noise
  const double elapsed_us = ToSeconds(Now() - t0) * 1e6;
  EXPECT_GT(elapsed_us, 10000);
  EXPECT_LT(elapsed_us, 200000);
}

TEST(ThreadGroup, JoinsAllOnDestruction) {
  std::atomic<int> ran{0};
  {
    ThreadGroup group;
    for (int i = 0; i < 5; ++i) {
      group.Spawn([&ran] { ran++; });
    }
  }
  EXPECT_EQ(ran.load(), 5);
}

TEST(Logging, ParseLevelIsCaseInsensitive) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("ERROR"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("nonsense"), LogLevel::kWarn);
}

}  // namespace
}  // namespace hynet
