// Tests for the latency-injection proxy: transparency of content, added
// delay, response pacing (the ACK-clock emulation), and teardown.
#include <gtest/gtest.h>

#include "client/bench_runner.h"
#include "client/load_gen.h"
#include "common/clock.h"
#include "core/hybrid_server.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "net/socket.h"
#include "proxy/latency_proxy.h"

namespace hynet {
namespace {

std::unique_ptr<Server> StartEchoServer() {
  ServerConfig config;
  config.architecture = ServerArchitecture::kThreadPerConn;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  return server;
}

TEST(LatencyProxy, ForwardsContentIntact) {
  auto server = StartEchoServer();
  LatencyProxyConfig pc;
  pc.upstream = InetAddr::Loopback(server->Port());
  pc.one_way_delay = std::chrono::milliseconds(1);
  LatencyProxy proxy(pc);
  proxy.Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(proxy.Port());
  lc.connections = 4;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.4;
  lc.targets = {{BenchTarget(3000, 0), 1.0}};
  const LoadResult result = RunLoad(lc);

  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.completed, 10u);
  EXPECT_GT(proxy.ConnectionsProxied(), 0u);
  EXPECT_GT(proxy.BytesForwarded(), 0u);

  proxy.Stop();
  server->Stop();
}

TEST(LatencyProxy, AddsRoundTripDelay) {
  auto server = StartEchoServer();

  auto measure_rt = [&](uint16_t port) {
    LoadConfig lc;
    lc.server = InetAddr::Loopback(port);
    lc.connections = 1;
    lc.warmup_sec = 0.05;
    lc.measure_sec = 0.5;
    lc.targets = {{BenchTarget(100, 0), 1.0}};
    const LoadResult r = RunLoad(lc);
    return r.latency.Mean() / 1e6;  // ms
  };

  const double direct_ms = measure_rt(server->Port());

  LatencyProxyConfig pc;
  pc.upstream = InetAddr::Loopback(server->Port());
  pc.one_way_delay = std::chrono::milliseconds(5);
  LatencyProxy proxy(pc);
  proxy.Start();
  const double proxied_ms = measure_rt(proxy.Port());
  proxy.Stop();
  server->Stop();

  // Request path delayed 5ms + response released on the 5ms tick: expect
  // at least ~8ms added versus direct.
  EXPECT_GT(proxied_ms, direct_ms + 7.0);
  EXPECT_LT(proxied_ms, direct_ms + 60.0);
}

TEST(LatencyProxy, PacesLargeResponsesByWindowPerTick) {
  auto server = StartEchoServer();
  LatencyProxyConfig pc;
  pc.upstream = InetAddr::Loopback(server->Port());
  pc.one_way_delay = std::chrono::milliseconds(2);
  pc.window_bytes = 16 * 1024;
  LatencyProxy proxy(pc);
  proxy.Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(proxy.Port());
  lc.connections = 1;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.6;
  lc.targets = {{BenchTarget(100 * 1024, 0), 1.0}};
  const LoadResult result = RunLoad(lc);
  proxy.Stop();
  server->Stop();

  ASSERT_GT(result.completed, 0u);
  // 100KB at 16KB per 2ms tick needs >= 6 ticks ≈ 12ms + request delay.
  EXPECT_GT(result.latency.Mean() / 1e6, 12.0);
}

TEST(LatencyProxy, ManyConcurrentRelays) {
  auto server = StartEchoServer();
  LatencyProxyConfig pc;
  pc.upstream = InetAddr::Loopback(server->Port());
  pc.one_way_delay = std::chrono::milliseconds(1);
  LatencyProxy proxy(pc);
  proxy.Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(proxy.Port());
  lc.connections = 32;
  lc.warmup_sec = 0.1;
  lc.measure_sec = 0.5;
  lc.targets = {{BenchTarget(500, 0), 1.0}};
  const LoadResult result = RunLoad(lc);
  proxy.Stop();
  server->Stop();

  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(proxy.ConnectionsProxied(), 32u);
  EXPECT_GT(result.completed, 100u);
}

TEST(LatencyProxy, PreservesByteOrderAcrossDelayedChunks) {
  // Two pipelined requests through the proxy must produce two responses
  // in order with intact bodies (the timed queues must never reorder).
  auto server = StartEchoServer();
  LatencyProxyConfig pc;
  pc.upstream = InetAddr::Loopback(server->Port());
  pc.one_way_delay = std::chrono::milliseconds(2);
  LatencyProxy proxy(pc);
  proxy.Start();

  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(proxy.Port()));
  const std::string wire =
      BuildGetRequest(BenchTarget(5000, 0)) +
      BuildGetRequest(BenchTarget(700, 0));
  ASSERT_EQ(WriteFd(sock.fd(), wire.data(), wire.size()).n,
            static_cast<ssize_t>(wire.size()));

  HttpResponseParser parser;
  ByteBuffer in;
  char buf[8192];
  std::vector<size_t> sizes;
  while (sizes.size() < 2) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) {
      sizes.push_back(parser.response().body.size());
      continue;
    }
    ASSERT_NE(st, ParseStatus::kError);
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    ASSERT_GT(r.n, 0);
    in.Append(buf, static_cast<size_t>(r.n));
  }
  EXPECT_EQ(sizes[0], 5000u);
  EXPECT_EQ(sizes[1], 700u);
  proxy.Stop();
  server->Stop();
}

TEST(LatencyProxy, StopIsIdempotentAndClean) {
  auto server = StartEchoServer();
  LatencyProxyConfig pc;
  pc.upstream = InetAddr::Loopback(server->Port());
  pc.one_way_delay = std::chrono::milliseconds(1);
  auto proxy = std::make_unique<LatencyProxy>(pc);
  proxy->Start();
  proxy->Stop();
  proxy->Stop();
  proxy.reset();
  server->Stop();
}

TEST(BenchRunnerIntegration, LatencyPointRunsViaProxy) {
  BenchPoint point;
  point.server.architecture = ServerArchitecture::kThreadPerConn;
  point.concurrency = 8;
  point.measure_sec = 0.4;
  point.latency_ms = 2.0;
  point.targets = {{BenchTarget(1024, 0), 1.0}};
  const BenchPointResult r = RunBenchPoint(point);
  EXPECT_GT(r.Throughput(), 0.0);
  // RT must include at least the injected round trip.
  EXPECT_GT(r.MeanLatencyMs(), 3.0);
}

}  // namespace
}  // namespace hynet
