// Unit tests for the HTTP subset: incremental parsing under arbitrary
// fragmentation, serialization round trips, malformed input rejection.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"

namespace hynet {
namespace {

TEST(HttpRequestParserTest, ParsesSimpleGet) {
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append("GET /index.html HTTP/1.1\r\nHost: example\r\n\r\n");
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().method, "GET");
  EXPECT_EQ(parser.request().path, "/index.html");
  EXPECT_EQ(parser.request().Header("Host"), "example");
  EXPECT_TRUE(parser.request().keep_alive);
  EXPECT_TRUE(buf.Empty());
}

TEST(HttpRequestParserTest, ParsesQueryParameters) {
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append("GET /bench?size=102400&us=50&flag HTTP/1.1\r\n\r\n");
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().path, "/bench");
  EXPECT_EQ(parser.request().QueryParam("size"), "102400");
  EXPECT_EQ(parser.request().QueryParamInt("size", 0), 102400);
  EXPECT_EQ(parser.request().QueryParamInt("us", -1), 50);
  EXPECT_EQ(parser.request().QueryParam("flag"), "");
  EXPECT_EQ(parser.request().QueryParamInt("missing", 77), 77);
}

TEST(HttpRequestParserTest, OneByteAtATime) {
  HttpRequestParser parser;
  ByteBuffer buf;
  const std::string wire =
      "POST /submit HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello";
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    buf.Append(&wire[i], 1);
    ASSERT_EQ(parser.Parse(buf), ParseStatus::kNeedMore) << "at byte " << i;
  }
  buf.Append(&wire.back(), 1);
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpRequestParserTest, PipelinedRequestsParseSequentially) {
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n");
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().path, "/a");
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().path, "/b");
  EXPECT_EQ(parser.Parse(buf), ParseStatus::kNeedMore);
}

TEST(HttpRequestParserTest, ConnectionCloseRespected) {
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append("GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(HttpRequestParserTest, Http10DefaultsToClose) {
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append("GET / HTTP/1.0\r\n\r\n");
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_FALSE(parser.request().keep_alive);
}

TEST(HttpRequestParserTest, RejectsMissingVersion) {
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append("GET /\r\n\r\n");
  EXPECT_EQ(parser.Parse(buf), ParseStatus::kError);
}

TEST(HttpRequestParserTest, RejectsNegativeContentLength) {
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append("POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n");
  EXPECT_EQ(parser.Parse(buf), ParseStatus::kError);
}

TEST(HttpRequestParserTest, RejectsGarbageHeaderLine) {
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append("GET / HTTP/1.1\r\nthis-is-not-a-header\r\n\r\n");
  EXPECT_EQ(parser.Parse(buf), ParseStatus::kError);
}

TEST(HttpRequestParserTest, ReusableAcrossRequests) {
  HttpRequestParser parser;
  ByteBuffer buf;
  for (int i = 0; i < 50; ++i) {
    buf.Append("GET /r" + std::to_string(i) + " HTTP/1.1\r\n\r\n");
    ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
    EXPECT_EQ(parser.request().path, "/r" + std::to_string(i));
  }
}

TEST(HttpRequestParserTest, HeaderWhitespaceTrimmed) {
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append("GET / HTTP/1.1\r\nX-Pad:    spaced value  \r\n\r\n");
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().Header("x-pad"), "spaced value");
}

TEST(HttpResponseParserTest, ParsesStatusAndBody) {
  HttpResponseParser parser;
  ByteBuffer buf;
  buf.Append("HTTP/1.1 404 Not Found\r\nContent-Length: 3\r\n\r\nnah");
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_EQ(parser.response().status, 404);
  EXPECT_EQ(parser.response().reason, "Not Found");
  EXPECT_EQ(parser.response().body, "nah");
}

TEST(HttpResponseParserTest, FragmentedLargeBody) {
  HttpResponseParser parser;
  ByteBuffer buf;
  const std::string body(100 * 1024, 'x');
  std::string wire = "HTTP/1.1 200 OK\r\nContent-Length: " +
                     std::to_string(body.size()) + "\r\n\r\n" + body;
  size_t off = 0;
  while (off < wire.size()) {
    const size_t chunk = std::min<size_t>(1400, wire.size() - off);
    buf.Append(wire.data() + off, chunk);
    off += chunk;
    const ParseStatus st = parser.Parse(buf);
    if (off < wire.size()) {
      ASSERT_EQ(st, ParseStatus::kNeedMore);
    } else {
      ASSERT_EQ(st, ParseStatus::kComplete);
    }
  }
  EXPECT_EQ(parser.response().body.size(), body.size());
}

TEST(HttpResponseParserTest, RejectsNonHttpPreamble) {
  HttpResponseParser parser;
  ByteBuffer buf;
  buf.Append("SMTP 220 hi\r\n\r\n");
  EXPECT_EQ(parser.Parse(buf), ParseStatus::kError);
}

TEST(HttpCodec, ResponseRoundTrip) {
  HttpResponse resp;
  resp.status = 200;
  resp.body = "payload-bytes";
  resp.SetHeader("Content-Type", "text/plain");
  ByteBuffer wire;
  SerializeResponse(resp, wire);

  HttpResponseParser parser;
  ASSERT_EQ(parser.Parse(wire), ParseStatus::kComplete);
  EXPECT_EQ(parser.response().status, 200);
  EXPECT_EQ(parser.response().body, "payload-bytes");
  EXPECT_EQ(parser.response().Header("content-type"), "text/plain");
  EXPECT_TRUE(parser.response().keep_alive);
}

TEST(HttpCodec, RequestRoundTrip) {
  HttpRequest req;
  req.method = "POST";
  req.target = "/submit?k=v";
  req.body = "form-data";
  req.headers.emplace_back("X-Custom", "1");
  ByteBuffer wire;
  SerializeRequest(req, wire);

  HttpRequestParser parser;
  ASSERT_EQ(parser.Parse(wire), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().method, "POST");
  EXPECT_EQ(parser.request().path, "/submit");
  EXPECT_EQ(parser.request().QueryParam("k"), "v");
  EXPECT_EQ(parser.request().body, "form-data");
  EXPECT_EQ(parser.request().Header("X-Custom"), "1");
}

TEST(HttpCodec, CloseConnectionSerialized) {
  HttpResponse resp;
  resp.keep_alive = false;
  ByteBuffer wire;
  SerializeResponse(resp, wire);
  EXPECT_NE(wire.ToString().find("Connection: close"), std::string::npos);
}

TEST(HttpCodec, BuildGetRequestIsParseable) {
  const std::string wire = BuildGetRequest("/bench?size=100");
  ByteBuffer buf;
  buf.Append(wire);
  HttpRequestParser parser;
  ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().QueryParamInt("size", 0), 100);
}

TEST(HttpCodec, PushedResourcesSerializedAsPayloadTrain) {
  HttpResponse resp;
  resp.body = "page";
  resp.pushed = {"styles", "script-code"};
  ByteBuffer wire;
  SerializeResponse(resp, wire);

  HttpResponseParser parser;
  ASSERT_EQ(parser.Parse(wire), ParseStatus::kComplete);
  EXPECT_EQ(parser.response().body, "pagestylesscript-code");
  EXPECT_EQ(parser.response().Header("X-Push-Parts"), "2");
  EXPECT_EQ(parser.response().Header("X-Push-Sizes"), "6,11");
}

TEST(HttpCodec, PayloadBytesCountsPushedParts) {
  HttpResponse resp;
  resp.body.assign(100, 'b');
  resp.pushed.emplace_back(50, 'p');
  resp.pushed.emplace_back(25, 'q');
  EXPECT_EQ(resp.PayloadBytes(), 175u);
  resp.Clear();
  EXPECT_TRUE(resp.pushed.empty());
  EXPECT_EQ(resp.PayloadBytes(), 0u);
}

TEST(EqualsIgnoreCaseTest, Basics) {
  EXPECT_TRUE(EqualsIgnoreCase("Content-Length", "content-length"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

// Property sweep: any split point of a valid request must parse identically.
class SplitPointTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SplitPointTest, RequestParsesAtAnySplit) {
  const std::string wire =
      "POST /p?x=1 HTTP/1.1\r\nContent-Length: 11\r\nA: b\r\n\r\nhello world";
  const size_t split = GetParam() % wire.size();
  HttpRequestParser parser;
  ByteBuffer buf;
  buf.Append(wire.substr(0, split));
  const ParseStatus first = parser.Parse(buf);
  if (split < wire.size()) {
    ASSERT_EQ(first, ParseStatus::kNeedMore);
    buf.Append(wire.substr(split));
    ASSERT_EQ(parser.Parse(buf), ParseStatus::kComplete);
  }
  EXPECT_EQ(parser.request().body, "hello world");
  EXPECT_EQ(parser.request().QueryParam("x"), "1");
}

INSTANTIATE_TEST_SUITE_P(Splits, SplitPointTest,
                         ::testing::Range<size_t>(1, 60, 3));

}  // namespace
}  // namespace hynet
