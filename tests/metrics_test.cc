// Unit tests for metrics/: /proc counters, CPU sampling, reporting.
#include <gtest/gtest.h>

#include <sched.h>

#include <chrono>

#include <thread>

#include "common/thread_util.h"
#include "metrics/cpu_sample.h"
#include "metrics/proc_stat.h"
#include "metrics/phase_profiler.h"
#include "metrics/report.h"

namespace hynet {
namespace {

TEST(ProcStat, ReadsOwnCtxSwitches) {
  const CtxSwitchCounts before = ReadCtxSwitches(CurrentTid());
  // Voluntary switches: sleep a few times.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const CtxSwitchCounts after = ReadCtxSwitches(CurrentTid());
  EXPECT_GE(after.voluntary, before.voluntary + 5);
  EXPECT_GE(after.Total(), before.Total());
}

TEST(ProcStat, DeadTidReadsZero) {
  const CtxSwitchCounts counts = ReadCtxSwitches(999999999);
  EXPECT_EQ(counts.Total(), 0u);
  const ThreadCpuTimes cpu = ReadThreadCpu(999999999);
  EXPECT_EQ(cpu.Total(), 0.0);
}

TEST(ProcStat, ThreadCpuGrowsWithWork) {
  const int tid = CurrentTid();
  const ThreadCpuTimes before = ReadThreadCpu(tid);
  CalibrateCpuBurn();
  BurnCpuMicros(100000);  // 100 ms >> the 10 ms tick granularity
  const ThreadCpuTimes after = ReadThreadCpu(tid);
  EXPECT_GT(after.user_sec, before.user_sec);
}

TEST(ProcStat, ProcessCpuIncludesAllThreads) {
  const ThreadCpuTimes before = ReadProcessCpu();
  std::thread worker([] {
    CalibrateCpuBurn();
    BurnCpuMicros(50000);
  });
  worker.join();
  const ThreadCpuTimes after = ReadProcessCpu();
  EXPECT_GT(after.Total(), before.Total());
  EXPECT_GE(after.user_sec, before.user_sec);
}

TEST(ProcStat, SumAggregatesMultipleThreads) {
  std::vector<int> tids;
  std::mutex mu;
  std::vector<std::thread> threads;
  for (int i = 0; i < 3; ++i) {
    threads.emplace_back([&] {
      {
        std::lock_guard<std::mutex> lock(mu);
        tids.push_back(CurrentTid());
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    });
  }
  while (true) {
    std::lock_guard<std::mutex> lock(mu);
    if (tids.size() == 3) break;
  }
  const CtxSwitchCounts sum = SumCtxSwitches(tids);
  EXPECT_GT(sum.Total(), 0u);
  for (auto& t : threads) t.join();
}

TEST(ActivitySampler, MeasuresDeltaOverWindow) {
  ServerActivitySampler sampler({CurrentTid()});
  sampler.Start();
  CalibrateCpuBurn();
  BurnCpuMicros(60000);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const ActivityDelta delta = sampler.Stop();
  EXPECT_GT(delta.elapsed_sec, 0.05);
  EXPECT_GT(delta.ctx_switches.Total(), 0u);
  EXPECT_GE(delta.CpuUtilization(), 0.0);
  EXPECT_LE(delta.UserShare(), 1.0);
}

TEST(CountersArithmetic, SubtractionAndAddition) {
  CtxSwitchCounts a{10, 5}, b{4, 2};
  const CtxSwitchCounts d = a - b;
  EXPECT_EQ(d.voluntary, 6u);
  EXPECT_EQ(d.involuntary, 3u);
  CtxSwitchCounts sum{};
  sum += a;
  sum += b;
  EXPECT_EQ(sum.Total(), 21u);

  ThreadCpuTimes x{2.0, 1.0}, y{0.5, 0.25};
  const ThreadCpuTimes dz = x - y;
  EXPECT_DOUBLE_EQ(dz.user_sec, 1.5);
  EXPECT_DOUBLE_EQ(dz.sys_sec, 0.75);
}

TEST(PhaseProfilerTest, DisabledRecordsNothingViaScopedPhase) {
  PhaseProfiler profiler;  // disabled by default
  { ScopedPhase phase(profiler, Phase::kParse); }
  EXPECT_EQ(profiler.Snap().count[0], 0u);
}

TEST(PhaseProfilerTest, RecordsAndAverages) {
  PhaseProfiler profiler;
  profiler.Enable(true);
  profiler.Record(Phase::kWrite, 100);
  profiler.Record(Phase::kWrite, 300);
  profiler.Record(Phase::kHandler, 50);
  const auto snap = profiler.Snap();
  EXPECT_DOUBLE_EQ(snap.MeanNs(Phase::kWrite), 200.0);
  EXPECT_DOUBLE_EQ(snap.MeanNs(Phase::kHandler), 50.0);
  EXPECT_DOUBLE_EQ(snap.MeanNs(Phase::kParse), 0.0);
}

TEST(PhaseProfilerTest, SnapshotSubtraction) {
  PhaseProfiler profiler;
  profiler.Enable(true);
  profiler.Record(Phase::kParse, 10);
  const auto before = profiler.Snap();
  profiler.Record(Phase::kParse, 30);
  const auto delta = profiler.Snap() - before;
  EXPECT_EQ(delta.count[static_cast<size_t>(Phase::kParse)], 1u);
  EXPECT_DOUBLE_EQ(delta.MeanNs(Phase::kParse), 30.0);
}

TEST(PhaseProfilerTest, ScopedPhaseMeasuresRealTime) {
  PhaseProfiler profiler;
  profiler.Enable(true);
  {
    ScopedPhase phase(profiler, Phase::kHandler);
    // Wall-clock-bounded spin: BurnCpuMicros(2000) alone can finish early
    // when its one-shot calibration ran on a loaded machine (the
    // iters-per-us estimate comes out low), which flaked this test under
    // a parallel ctest run.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < until) BurnCpuMicros(50);
  }
  const auto snap = profiler.Snap();
  EXPECT_GE(snap.MeanNs(Phase::kHandler), 1'000'000.0);  // >= 1ms
}

TEST(PhaseNames, Stable) {
  EXPECT_STREQ(PhaseName(Phase::kParse), "parse");
  EXPECT_STREQ(PhaseName(Phase::kWrite), "write");
}

TEST(TablePrinterTest, FormattersAreStable) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(1000.0, 0), "1000");
  EXPECT_EQ(TablePrinter::Int(-42), "-42");
}

TEST(TablePrinterTest, PrintDoesNotCrashOnRaggedRows) {
  TablePrinter table({"a", "b", "c"});
  table.AddRow({"1"});            // short row: padded
  table.AddRow({"1", "2", "3"});
  table.Print();                  // visual output; asserting no crash
  table.PrintCsv("test");
}

}  // namespace
}  // namespace hynet
