// Unit tests for runtime/: worker pool, channel pipeline semantics, and
// the outbound buffer's writeSpin-cap behaviour against real socketpairs.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <set>
#include <thread>

#include "client/bench_runner.h"
#include "common/fd.h"
#include "common/payload.h"
#include "common/queue.h"
#include "core/hybrid_server.h"
#include "io/io_backend.h"
#include "metrics/registry.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "runtime/buffer_pool.h"
#include "runtime/outbound_buffer.h"
#include "runtime/pipeline.h"
#include "runtime/worker_pool.h"
#include "servers/server.h"

namespace hynet {
namespace {

TEST(WorkerPoolTest, ExecutesAllSubmittedTasks) {
  WorkerPool pool(4, "test");
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] { count++; });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 200);
}

TEST(WorkerPoolTest, ThreadIdsAreDistinctAndComplete) {
  WorkerPool pool(6, "tid");
  const std::vector<int> tids = pool.ThreadIds();
  EXPECT_EQ(tids.size(), 6u);
  EXPECT_EQ(std::set<int>(tids.begin(), tids.end()).size(), 6u);
}

TEST(WorkerPoolTest, SurvivesThrowingTask) {
  WorkerPool pool(2, "throw");
  std::atomic<int> after{0};
  pool.Submit([] { throw std::runtime_error("boom"); });
  pool.Submit([&after] { after++; });
  pool.Shutdown();
  EXPECT_EQ(after.load(), 1);
}

TEST(WorkerPoolTest, TasksRunOnPoolThreadsNotCaller) {
  WorkerPool pool(2, "where");
  const std::vector<int> tids = pool.ThreadIds();
  std::atomic<int> ran_on{0};
  pool.Submit([&] { ran_on = CurrentTid(); });
  pool.Shutdown();
  EXPECT_NE(ran_on.load(), CurrentTid());
  EXPECT_TRUE(std::find(tids.begin(), tids.end(), ran_on.load()) !=
              tids.end());
}

TEST(WorkerPoolTest, SubmitBatchExecutesEverything) {
  WorkerPool pool(3, "batch");
  std::atomic<int> count{0};
  for (int round = 0; round < 10; ++round) {
    std::vector<WorkerPool::Task> batch;
    for (int i = 0; i < 20; ++i) {
      batch.push_back([&count] { count++; });
    }
    pool.SubmitBatch(std::move(batch));
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 200);
}

TEST(WorkerPoolTest, BatchedPopDrainsAllTasksAcrossWorkers) {
  // max_pop_batch > 1 switches workers to the PopBatch loop; every task
  // still runs exactly once and lands on a pool thread.
  WorkerPool::Options opts;
  opts.max_pop_batch = 8;
  WorkerPool pool(4, "popb", opts);
  const std::vector<int> tids = pool.ThreadIds();
  std::atomic<int> count{0};
  std::atomic<bool> on_pool_thread{true};
  for (int i = 0; i < 500; ++i) {
    pool.Submit([&] {
      count++;
      const int tid = CurrentTid();
      if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
        on_pool_thread = false;
      }
    });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 500);
  EXPECT_TRUE(on_pool_thread.load());
}

// --- BlockingQueue batch operations ---

TEST(BlockingQueueTest, PushBatchPopBatchRoundTrip) {
  BlockingQueue<int> q;
  q.PushBatch({1, 2, 3, 4, 5});
  EXPECT_EQ(q.Size(), 5u);
  std::vector<int> out;
  ASSERT_TRUE(q.PopBatch(3, out));
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));  // FIFO, clamped to max
  ASSERT_TRUE(q.PopBatch(10, out));
  EXPECT_EQ(out, (std::vector<int>{4, 5}));  // drains what is there
  EXPECT_EQ(q.Size(), 0u);
}

TEST(BlockingQueueTest, PopBatchDrainsRemainingItemsAfterClose) {
  // Close must not drop queued work: consumers keep receiving batches
  // until the queue is empty, and only then get the closed signal.
  BlockingQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  q.Close();
  std::vector<int> all;
  std::vector<int> batch;
  while (q.PopBatch(4, batch)) {
    all.insert(all.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(all.size(), 10u);
  EXPECT_TRUE(batch.empty());  // the closing pop returns nothing
}

TEST(BlockingQueueTest, PopBatchBlocksUntilPushArrives) {
  BlockingQueue<int> q;
  std::vector<int> got;
  std::thread consumer([&] {
    std::vector<int> batch;
    if (q.PopBatch(16, batch)) got = batch;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.PushBatch({7, 8, 9});
  consumer.join();
  EXPECT_EQ(got, (std::vector<int>{7, 8, 9}));
  q.Close();
}

TEST(BlockingQueueTest, BatchHandoffWakesEnoughConsumersToDrain) {
  // One PushBatch uses a single notify_one; the daisy-chained notify in
  // PopBatch must still get a large batch drained by several consumers.
  BlockingQueue<int> q;
  std::atomic<int> consumed{0};
  std::vector<std::thread> consumers;
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      while (q.PopBatch(2, batch)) {
        consumed += static_cast<int>(batch.size());
      }
    });
  }
  std::vector<int> items(100);
  q.PushBatch(std::move(items));
  while (consumed.load() < 100) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(consumed.load(), 100);
}

TEST(BlockingQueueTest, DepthGaugeTracksQueueSize) {
  MetricsRegistry registry;
  Gauge& gauge = registry.GetGauge("worker_queue_depth");
  BlockingQueue<int> q;
  q.BindDepthGauge(&gauge);
  q.PushBatch({1, 2, 3});
  EXPECT_EQ(gauge.Value(), 3);
  (void)q.Pop();
  EXPECT_EQ(gauge.Value(), 2);
  std::vector<int> batch;
  ASSERT_TRUE(q.PopBatch(8, batch));
  EXPECT_EQ(gauge.Value(), 0);
  q.Close();
}

// --- Pipeline ---

class Recorder final : public ChannelHandler {
 public:
  explicit Recorder(std::vector<std::string>& log, std::string name)
      : log_(log), name_(std::move(name)) {}

  void OnData(ChannelContext& ctx, ByteBuffer& in) override {
    log_.push_back(name_ + ":data");
    ctx.FireData(in);
  }
  void OnMessage(ChannelContext& ctx, std::any msg) override {
    log_.push_back(name_ + ":msg");
    ctx.FireMessage(std::move(msg));
  }
  void OnWrite(ChannelContext& ctx, std::any msg) override {
    log_.push_back(name_ + ":write");
    ctx.Write(std::move(msg));
  }

 private:
  std::vector<std::string>& log_;
  std::string name_;
};

TEST(PipelineTest, InboundHeadToTailOutboundTailToHead) {
  std::vector<std::string> log;
  ChannelPipeline pipeline;
  pipeline.AddLast(std::make_shared<Recorder>(log, "A"));
  pipeline.AddLast(std::make_shared<Recorder>(log, "B"));
  std::string sunk;
  pipeline.SetOutboundSink([&](Payload payload) { sunk = payload.Flatten(); });

  ByteBuffer in;
  in.Append("x");
  pipeline.FireData(in);
  pipeline.Write(std::any(std::string("out")));

  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0], "A:data");
  EXPECT_EQ(log[1], "B:data");
  EXPECT_EQ(log[2], "B:write");  // outbound reverses
  EXPECT_EQ(log[3], "A:write");
  EXPECT_EQ(sunk, "out");
  EXPECT_TRUE(in.Empty()) << "tail must discard undecoded bytes";
}

TEST(PipelineTest, HandlerCanTransformOutbound) {
  class Upper final : public ChannelHandler {
   public:
    void OnWrite(ChannelContext& ctx, std::any msg) override {
      auto s = std::any_cast<std::string>(std::move(msg));
      for (char& c : s) c = static_cast<char>(std::toupper(c));
      ctx.Write(std::any(std::move(s)));
    }
  };
  ChannelPipeline pipeline;
  pipeline.AddLast(std::make_shared<Upper>());
  std::string sunk;
  pipeline.SetOutboundSink([&](Payload payload) { sunk = payload.Flatten(); });
  pipeline.Write(std::any(std::string("hello")));
  EXPECT_EQ(sunk, "HELLO");
}

TEST(PipelineTest, CloseRequestPropagates) {
  class DataCloser final : public ChannelHandler {
   public:
    void OnData(ChannelContext& ctx, ByteBuffer& in) override {
      in.ConsumeAll();
      ctx.Close();
    }
  };
  ChannelPipeline pipeline;
  pipeline.AddLast(std::make_shared<DataCloser>());
  bool closed = false;
  pipeline.SetCloseRequest([&] { closed = true; });
  ByteBuffer data;
  data.Append("x");
  pipeline.FireData(data);
  EXPECT_TRUE(closed);
}

TEST(PipelineTest, DecoderFiresMessagesToNextHandler) {
  // A head decoder that turns each byte into one message, and a tail
  // handler that counts them — the codec/app split used by NettyServer.
  class ByteDecoder final : public ChannelHandler {
   public:
    void OnData(ChannelContext& ctx, ByteBuffer& in) override {
      while (!in.Empty()) {
        const char c = *in.ReadPtr();
        in.Consume(1);
        ctx.FireMessage(std::any(c));
      }
    }
  };
  class Counter final : public ChannelHandler {
   public:
    explicit Counter(int& n) : n_(n) {}
    void OnMessage(ChannelContext&, std::any msg) override {
      ASSERT_NE(std::any_cast<char>(&msg), nullptr);
      n_++;
    }

   private:
    int& n_;
  };
  int count = 0;
  ChannelPipeline pipeline;
  pipeline.AddLast(std::make_shared<ByteDecoder>());
  pipeline.AddLast(std::make_shared<Counter>(count));
  ByteBuffer in;
  in.Append("abcde");
  pipeline.FireData(in);
  EXPECT_EQ(count, 5);
}

// --- OutboundBuffer against a real socketpair ---

class OutboundBufferTest : public ::testing::Test {
 protected:
  void SetUp() override {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    writer_.Reset(fds[0]);
    reader_.Reset(fds[1]);
    SetFdNonBlocking(writer_.get(), true);
    // Small kernel buffers so a large message cannot be absorbed at once.
    const int small = 16 * 1024;
    ::setsockopt(writer_.get(), SOL_SOCKET, SO_SNDBUF, &small,
                 sizeof(small));
    ::setsockopt(reader_.get(), SOL_SOCKET, SO_RCVBUF, &small,
                 sizeof(small));
  }

  std::string DrainReader() {
    std::string out;
    char buf[64 * 1024];
    while (true) {
      SetFdNonBlocking(reader_.get(), true);
      const IoResult r = ReadFd(reader_.get(), buf, sizeof(buf));
      if (r.n <= 0) break;
      out.append(buf, static_cast<size_t>(r.n));
    }
    return out;
  }

  ScopedFd writer_;
  ScopedFd reader_;
};

TEST_F(OutboundBufferTest, SmallMessageFlushesInOneCall) {
  OutboundBuffer buf(16);
  WriteStats stats;
  buf.Add("hello");
  EXPECT_EQ(buf.Flush(writer_.get(), stats), FlushResult::kDone);
  EXPECT_EQ(stats.write_calls.load(), 1u);
  EXPECT_EQ(stats.responses.load(), 1u);
  EXPECT_TRUE(buf.Empty());
  EXPECT_EQ(DrainReader(), "hello");
}

TEST_F(OutboundBufferTest, FullKernelBufferReturnsWouldBlock) {
  OutboundBuffer buf(0 /* unbounded spins */);
  WriteStats stats;
  buf.Add(std::string(4 * 1024 * 1024, 'z'));  // far beyond kernel buffers
  EXPECT_EQ(buf.Flush(writer_.get(), stats), FlushResult::kWouldBlock);
  EXPECT_GT(stats.zero_writes.load(), 0u);
  EXPECT_FALSE(buf.Empty());
  EXPECT_GT(buf.PendingBytes(), 0u);
}

TEST_F(OutboundBufferTest, SpinCapStopsFlushEarly) {
  OutboundBuffer buf(2);
  WriteStats stats;
  // One writev batch spans at most the iovec cap's worth of messages, so
  // enough tiny messages still need >2 syscalls and the cap hits before
  // the kernel buffer fills (300 bytes total fit trivially).
  for (int i = 0; i < 300; ++i) buf.Add("x");
  EXPECT_EQ(buf.Flush(writer_.get(), stats), FlushResult::kSpinCapped);
  EXPECT_EQ(stats.write_calls.load(), 2u);
  EXPECT_EQ(stats.spin_capped.load(), 1u);
  EXPECT_GT(buf.PendingMessages(), 0u);
  EXPECT_LT(buf.PendingMessages(), 300u);
  // Resuming makes progress.
  while (buf.Flush(writer_.get(), stats) == FlushResult::kSpinCapped) {
  }
  EXPECT_TRUE(buf.Empty());
  EXPECT_EQ(stats.responses.load(), 300u);
  EXPECT_EQ(DrainReader(), std::string(300, 'x'));
}

TEST_F(OutboundBufferTest, PipelinedMessagesCoalesceIntoOneSyscall) {
  OutboundBuffer buf(16);
  WriteStats stats;
  std::string expected;
  for (int i = 0; i < 10; ++i) {
    const std::string msg = "msg-" + std::to_string(i) + ";";
    expected += msg;
    buf.Add(msg);
  }
  EXPECT_EQ(buf.Flush(writer_.get(), stats), FlushResult::kDone);
  // The whole pipelined burst drains in a single vectored syscall.
  EXPECT_EQ(stats.write_calls.load(), 1u);
  EXPECT_EQ(stats.writev_calls.load(), 1u);
  EXPECT_EQ(stats.iov_segments.load(), 10u);
  EXPECT_EQ(stats.responses.load(), 10u);
  EXPECT_EQ(DrainReader(), expected);
}

TEST_F(OutboundBufferTest, PartialWritevResumesMidSegment) {
  OutboundBuffer buf(1);
  WriteStats stats;
  // A three-segment payload far beyond the kernel buffer: the resume
  // offset repeatedly lands mid-iovec (inside the shared body).
  const std::string head(100, 'h');
  auto body = std::make_shared<const std::string>(std::string(512 * 1024, 'b'));
  const std::string tail(100, 't');
  buf.Add(Payload(std::string(head), body, std::string(tail)));
  std::string received;
  while (true) {
    const FlushResult r = buf.Flush(writer_.get(), stats);
    ASSERT_NE(r, FlushResult::kError);
    if (r == FlushResult::kDone) break;
    received += DrainReader();
  }
  received += DrainReader();
  EXPECT_EQ(received, head + *body + tail);
  EXPECT_EQ(stats.responses.load(), 1u);
}

TEST_F(OutboundBufferTest, AddWithOffsetSkipsAlreadyWrittenBytes) {
  OutboundBuffer buf(16);
  WriteStats stats;
  // The hybrid light path hands over a partially-sent payload this way.
  buf.Add(Payload::FromString("abcdefgh"), /*offset=*/5);
  EXPECT_EQ(buf.PendingBytes(), 3u);
  EXPECT_EQ(buf.Flush(writer_.get(), stats), FlushResult::kDone);
  EXPECT_EQ(DrainReader(), "fgh");
}

TEST_F(OutboundBufferTest, ZeroByteMessageCompletesWithoutSyscall) {
  OutboundBuffer buf(16);
  WriteStats stats;
  buf.Add(Payload());
  EXPECT_EQ(buf.Flush(writer_.get(), stats), FlushResult::kDone);
  EXPECT_EQ(stats.write_calls.load(), 0u);
  EXPECT_EQ(stats.responses.load(), 1u);
  EXPECT_TRUE(buf.Empty());
}

TEST_F(OutboundBufferTest, WritesPerResponseHistogramUnderCoalescing) {
  MetricsRegistry registry;
  HistogramMetric& hist = registry.GetHistogram("writes_per_response");
  OutboundBuffer buf(16);
  WriteStats stats;
  for (int i = 0; i < 8; ++i) buf.Add("tiny-response");
  EXPECT_EQ(buf.Flush(writer_.get(), stats, &hist), FlushResult::kDone);
  // One writev covered all eight messages: each response saw one syscall.
  const HistogramData data = hist.Snapshot();
  EXPECT_EQ(data.count, 8u);
  EXPECT_EQ(data.max, 1);
  EXPECT_EQ(data.sum, 8);
}

TEST_F(OutboundBufferTest, ResumesAfterReaderDrains) {
  OutboundBuffer buf(16);
  WriteStats stats;
  const std::string payload(512 * 1024, 'q');
  buf.Add(payload);
  FlushResult r = buf.Flush(writer_.get(), stats);
  std::string received;
  while (r != FlushResult::kDone) {
    ASSERT_NE(r, FlushResult::kError);
    received += DrainReader();
    r = buf.Flush(writer_.get(), stats);
  }
  received += DrainReader();
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(stats.responses.load(), 1u);
}

TEST_F(OutboundBufferTest, PeerCloseIsError) {
  OutboundBuffer buf(16);
  WriteStats stats;
  reader_.Reset();  // close the reading end
  buf.Add(std::string(256 * 1024, 'w'));
  FlushResult r = buf.Flush(writer_.get(), stats);
  // First flush may partially succeed into the kernel buffer; keep going.
  for (int i = 0; i < 3 && r != FlushResult::kError; ++i) {
    r = buf.Flush(writer_.get(), stats);
  }
  EXPECT_EQ(r, FlushResult::kError);
}

TEST(OutboundBufferUnit, AccountsPendingBytes) {
  OutboundBuffer buf(16);
  buf.Add("abc");
  buf.Add("defg");
  EXPECT_EQ(buf.PendingBytes(), 7u);
  EXPECT_EQ(buf.PendingMessages(), 2u);
}

// --- BufferPool ---

TEST(BufferPoolTest, RecyclesReleasedBuffers) {
  BufferPool pool;
  ByteBuffer a = pool.Acquire();
  a.Append("some request bytes");
  EXPECT_EQ(pool.FreeCount(), 0u);
  pool.Release(std::move(a));
  EXPECT_EQ(pool.FreeCount(), 1u);
  ByteBuffer b = pool.Acquire();
  EXPECT_EQ(pool.FreeCount(), 0u);
  // Recycled buffers come back empty.
  EXPECT_EQ(b.ReadableBytes(), 0u);
}

TEST(BufferPoolTest, FreeListIsCapped) {
  BufferPool pool(/*max_pooled=*/2);
  ByteBuffer a = pool.Acquire();
  ByteBuffer b = pool.Acquire();
  ByteBuffer c = pool.Acquire();
  pool.Release(std::move(a));
  pool.Release(std::move(b));
  pool.Release(std::move(c));
  EXPECT_EQ(pool.FreeCount(), 2u);
}

TEST(BufferPoolTest, ExportsHitMissOutstandingMetrics) {
  MetricsRegistry registry;
  BufferPool pool;
  pool.BindMetrics(registry);
  ByteBuffer a = pool.Acquire();  // miss (empty free list)
  pool.Release(std::move(a));
  ByteBuffer b = pool.Acquire();  // hit
  const MetricsSnapshot snap = registry.Scrape();
  EXPECT_EQ(snap.CounterValue("buffer_pool_misses"), 1u);
  EXPECT_EQ(snap.CounterValue("buffer_pool_hits"), 1u);
  EXPECT_EQ(registry.GetGauge("buffer_pool_outstanding").Value(), 1);
  pool.Release(std::move(b));
  EXPECT_EQ(registry.GetGauge("buffer_pool_outstanding").Value(), 0);
}

TEST(BufferPoolTest, ReleasedBufferShedsExcessCapacity) {
  BufferPool pool;
  ByteBuffer big = pool.Acquire();
  big.Append(std::string(1024 * 1024, 'r'));
  big.ConsumeAll();
  pool.Release(std::move(big));
  ByteBuffer back = pool.Acquire();
  EXPECT_LE(back.Capacity(), ByteBuffer::kInitialCapacity);
}

TEST(BufferPoolTest, TrimIdleDropsStaleFreeEntriesOnly) {
  MetricsRegistry registry;
  BufferPool pool;
  pool.BindMetrics(registry);
  ByteBuffer out = pool.Acquire();  // outstanding: must survive the trim
  out.Append("outstanding");
  ByteBuffer a = pool.Acquire();
  ByteBuffer b = pool.Acquire();
  a.Append("grown so the free list carries real capacity");
  b.Append("grown so the free list carries real capacity");
  pool.Release(std::move(a));
  pool.Release(std::move(b));
  EXPECT_EQ(pool.FreeCount(), 2u);
  EXPECT_GT(pool.FreeBytes(), 0u);

  // Age zero: every free-list entry qualifies. Only the free list is
  // walked; the checked-out buffer is untouchable by construction.
  EXPECT_EQ(pool.TrimIdle(Duration::zero()), 2u);
  EXPECT_EQ(pool.FreeCount(), 0u);
  EXPECT_EQ(pool.FreeBytes(), 0u);
  const MetricsSnapshot snap = registry.Scrape();
  EXPECT_EQ(snap.CounterValue("buffer_pool_trimmed"), 2u);

  // The outstanding buffer still works and can still come home.
  EXPECT_EQ(registry.GetGauge("buffer_pool_outstanding").Value(), 1);
  pool.Release(std::move(out));
  EXPECT_EQ(pool.FreeCount(), 1u);
  EXPECT_EQ(registry.GetGauge("buffer_pool_outstanding").Value(), 0);
}

TEST(BufferPoolTest, TrimIdleKeepsRecentlyReleasedBuffers) {
  BufferPool pool;
  ByteBuffer a = pool.Acquire();
  a.Append("fresh");
  pool.Release(std::move(a));
  EXPECT_EQ(pool.TrimIdle(std::chrono::seconds(60)), 0u);
  EXPECT_EQ(pool.FreeCount(), 1u);
}

TEST(BufferPoolTest, FreeListByteBudgetCapsPooledBytes) {
  BufferPool pool(/*max_pooled=*/64,
                  /*max_pooled_bytes=*/2 * ByteBuffer::kInitialCapacity);
  ByteBuffer a = pool.Acquire();
  ByteBuffer b = pool.Acquire();
  ByteBuffer c = pool.Acquire();
  a.Append("x");
  b.Append("x");
  c.Append("x");
  pool.Release(std::move(a));
  pool.Release(std::move(b));
  pool.Release(std::move(c));  // over the byte budget: dropped, not pooled
  EXPECT_EQ(pool.FreeCount(), 2u);
  EXPECT_LE(pool.FreeBytes(), 2 * ByteBuffer::kInitialCapacity);
}

// ---------------------------------------------------------------------------
// Server-level backend conformance: the single-thread server must behave
// identically whether its event loop runs the epoll readiness engine or the
// io_uring completion engine (engine-owned reads, batched SENDMSG writes).
// Parameterized over ServerConfig::io_backend.
// ---------------------------------------------------------------------------

class ServerBackendConformanceTest
    : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "uring" && !IoUringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }
  ServerConfig Config() {
    ServerConfig c;
    c.architecture = ServerArchitecture::kSingleThread;
    c.io_backend = GetParam();
    return c;
  }
  bool IsUring() const { return std::string(GetParam()) == "uring"; }
};

// Reads one full HTTP response from an already-written request.
HttpResponse ReadResponse(int fd) {
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  while (true) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) return parser.response();
    if (st == ParseStatus::kError) throw std::runtime_error("parse error");
    const IoResult r = ReadFd(fd, buf, sizeof(buf));
    if (r.n <= 0) throw std::runtime_error("connection lost");
    in.Append(buf, static_cast<size_t>(r.n));
  }
}

void SendRequest(int fd, const std::string& wire) {
  size_t off = 0;
  while (off < wire.size()) {
    const IoResult r = WriteFd(fd, wire.data() + off, wire.size() - off);
    ASSERT_FALSE(r.Fatal());
    off += static_cast<size_t>(r.n);
  }
}

TEST_P(ServerBackendConformanceTest, PartialWriteResumeDeliversFullResponse) {
  // A response far larger than the send buffer forces short writes: the
  // epoll path resumes via EPOLLOUT, the uring path via re-submitted
  // SENDMSG ops picking up at the recorded offset. Either way every byte
  // must arrive, in order.
  ServerConfig config = Config();
  config.snd_buf_bytes = 16 * 1024;
  constexpr size_t kBody = 512 * 1024;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  SendRequest(sock.fd(), BuildGetRequest(BenchTarget(kBody, 0)));
  const HttpResponse resp = ReadResponse(sock.fd());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), kBody);

  const ServerCounters c = server->Snapshot();
  server->Stop();
  if (IsUring()) {
    // The completion engine really ran: SQEs were submitted and nothing
    // fell back to epoll.
    EXPECT_GT(c.uring_sqes_submitted, 0u);
    EXPECT_EQ(c.uring_fallbacks, 0u);
  } else {
    EXPECT_EQ(c.uring_sqes_submitted, 0u);
  }
}

TEST_P(ServerBackendConformanceTest, PipelinedRequestsAllAnswered) {
  // Back-to-back requests in one segment exercise the completion pump's
  // parse loop (several responses queued behind one read CQE).
  auto server = CreateServer(Config(), MakeBenchHandler());
  server->Start();

  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  std::string wire;
  constexpr int kPipelined = 12;
  for (int i = 0; i < kPipelined; ++i) {
    wire += BuildGetRequest(BenchTarget(256, 0));
  }
  SendRequest(sock.fd(), wire);
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  int completed = 0;
  while (completed < kPipelined) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) {
      EXPECT_EQ(parser.response().status, 200);
      completed++;
      parser.Reset();
      continue;
    }
    ASSERT_NE(st, ParseStatus::kError);
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    ASSERT_GT(r.n, 0);
    in.Append(buf, static_cast<size_t>(r.n));
  }
  server->Stop();
  EXPECT_EQ(completed, kPipelined);
}

TEST_P(ServerBackendConformanceTest, DrainShutdownClosesIdleConnections) {
  auto server = CreateServer(Config(), MakeBenchHandler());
  server->Start();

  // One idle keep-alive connection with a completed exchange.
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  SendRequest(sock.fd(), BuildGetRequest(BenchTarget(64, 0)));
  EXPECT_EQ(ReadResponse(sock.fd()).status, 200);

  const DrainResult result = server->Shutdown(std::chrono::milliseconds(2000));
  EXPECT_EQ(result.forced, 0u);
  EXPECT_GE(result.drained, 1u);

  // Closed server-side: the read yields EOF (or RST).
  char buf[64];
  EXPECT_LE(ReadFd(sock.fd(), buf, sizeof(buf)).n, 0);
}

INSTANTIATE_TEST_SUITE_P(Backends, ServerBackendConformanceTest,
                         ::testing::Values("epoll", "uring"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

// ---------------------------------------------------------------------------
// Architecture × I/O-plane conformance: every EventLoop architecture must
// behave identically over the epoll readiness engine, the uring completion
// plane (the uring default: engine-owned reads, queued SENDMSG writes via
// the per-loop CompletionPump), and the uring readiness shim
// (uring_mode="readiness", the A/B baseline).
// ---------------------------------------------------------------------------

struct ArchPlaneParam {
  const char* name;
  ServerArchitecture arch;
  const char* io_backend;
  const char* uring_mode;
};

class ArchPlaneConformanceTest
    : public ::testing::TestWithParam<ArchPlaneParam> {
 protected:
  void SetUp() override {
    if (std::string(GetParam().io_backend) == "uring" && !IoUringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }
  ServerConfig Config() {
    ServerConfig c;
    c.architecture = GetParam().arch;
    c.io_backend = GetParam().io_backend;
    c.uring_mode = GetParam().uring_mode;
    c.event_loops = 2;
    c.worker_threads = 2;
    c.stage_threads = 1;
    return c;
  }
  bool IsCompletion() const {
    return std::string(GetParam().io_backend) == "uring" &&
           std::string(GetParam().uring_mode) != "readiness";
  }
};

TEST_P(ArchPlaneConformanceTest, LargeResponsePartialWriteResume) {
  // A response far larger than the send buffer forces short writes; the
  // completion plane must resume from the recorded queue offset across
  // SENDMSG CQEs, whatever thread topology sits above the loop.
  ServerConfig config = Config();
  config.snd_buf_bytes = 16 * 1024;
  constexpr size_t kBody = 512 * 1024;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  SendRequest(sock.fd(), BuildGetRequest(BenchTarget(kBody, 0)));
  const HttpResponse resp = ReadResponse(sock.fd());
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body.size(), kBody);

  const ServerCounters c = server->Snapshot();
  server->Stop();
  if (IsCompletion()) {
    // The completion plane really carried the traffic: SQEs flowed and the
    // architecture's read() loops never ran. (write_calls stays non-zero
    // for kHybrid only — its light path's direct writev is the design.)
    EXPECT_GT(c.uring_sqes_submitted, 0u);
    EXPECT_EQ(c.read_calls, 0u);
    if (GetParam().arch != ServerArchitecture::kHybrid) {
      EXPECT_EQ(c.write_calls, 0u);
    }
  }
}

TEST_P(ArchPlaneConformanceTest, PipelinedRequestsAllAnswered) {
  auto server = CreateServer(Config(), MakeBenchHandler());
  server->Start();

  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  std::string wire;
  constexpr int kPipelined = 12;
  for (int i = 0; i < kPipelined; ++i) {
    wire += BuildGetRequest(BenchTarget(256, 0));
  }
  SendRequest(sock.fd(), wire);
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  int completed = 0;
  while (completed < kPipelined) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) {
      EXPECT_EQ(parser.response().status, 200);
      completed++;
      parser.Reset();
      continue;
    }
    ASSERT_NE(st, ParseStatus::kError);
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    ASSERT_GT(r.n, 0);
    in.Append(buf, static_cast<size_t>(r.n));
  }
  server->Stop();
  EXPECT_EQ(completed, kPipelined);
}

TEST_P(ArchPlaneConformanceTest, DrainShutdownClosesIdleConnections) {
  auto server = CreateServer(Config(), MakeBenchHandler());
  server->Start();

  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  SendRequest(sock.fd(), BuildGetRequest(BenchTarget(64, 0)));
  EXPECT_EQ(ReadResponse(sock.fd()).status, 200);

  const DrainResult result = server->Shutdown(std::chrono::milliseconds(2000));
  EXPECT_EQ(result.forced, 0u);
  EXPECT_GE(result.drained, 1u);

  char buf[64];
  EXPECT_LE(ReadFd(sock.fd(), buf, sizeof(buf)).n, 0);
}

std::vector<ArchPlaneParam> ArchPlaneMatrix() {
  std::vector<ArchPlaneParam> params;
  const std::pair<const char*, ServerArchitecture> archs[] = {
      {"multi_loop", ServerArchitecture::kMultiLoop},
      {"hybrid", ServerArchitecture::kHybrid},
      {"reactor_pool", ServerArchitecture::kReactorPool},
      {"reactor_pool_fix", ServerArchitecture::kReactorPoolFix},
      {"staged", ServerArchitecture::kStaged},
  };
  for (const auto& [name, arch] : archs) {
    params.push_back({name, arch, "epoll", ""});
    params.push_back({name, arch, "uring", ""});            // completion
    params.push_back({name, arch, "uring", "readiness"});   // A/B shim
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    ArchPlanes, ArchPlaneConformanceTest, ::testing::ValuesIn(ArchPlaneMatrix()),
    [](const ::testing::TestParamInfo<ArchPlaneParam>& info) {
      std::string plane =
          std::string(info.param.io_backend) == "epoll" ? "epoll"
          : std::string(info.param.uring_mode) == "readiness"
              ? "uring_readiness"
              : "uring_completion";
      return std::string(info.param.name) + "_" + plane;
    });

// ---------------------------------------------------------------------------
// Zero-copy send lifetime: responses at or above the SEND_ZC threshold keep
// their Payload bodies alive until the kernel's zero-copy notification CQE.
// An abrupt client close mid-transfer makes those notifications race the
// connection teardown — under ASan this is the no-use-after-free check.
// ---------------------------------------------------------------------------

class UringZeroCopyLifetimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!IoUringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }
};

TEST_F(UringZeroCopyLifetimeTest, AbruptClientCloseDuringLargeResponse) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kMultiLoop;
  config.io_backend = "uring";
  config.event_loops = 2;
  config.snd_buf_bytes = 16 * 1024;
  constexpr size_t kBody = 512 * 1024;  // over kZcThresholdBytes
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  for (int round = 0; round < 8; ++round) {
    Socket sock = Socket::CreateTcp(false);
    sock.Connect(InetAddr::Loopback(server->Port()));
    SendRequest(sock.fd(), BuildGetRequest(BenchTarget(kBody, 0)));
    // Read a slice so the server is mid-transfer, then vanish: RST makes
    // in-flight SEND_ZC ops fail while notification CQEs are still owed.
    char buf[4096];
    (void)ReadFd(sock.fd(), buf, sizeof(buf));
    struct linger lg{1, 0};
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  }

  // The server survived and still answers.
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  SendRequest(sock.fd(), BuildGetRequest(BenchTarget(1024, 0)));
  EXPECT_EQ(ReadResponse(sock.fd()).status, 200);
  server->Stop();
}

}  // namespace
}  // namespace hynet
