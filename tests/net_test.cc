// Unit tests for net/: addresses, sockets, epoll wrapper, event loop
// (fd dispatch, cross-thread tasks, timers), acceptor.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "common/clock.h"
#include "net/acceptor.h"
#include "net/event_loop.h"
#include "net/socket.h"
#include "net/timer_wheel.h"
#include "common/thread_util.h"

namespace hynet {
namespace {

TEST(InetAddrTest, LoopbackFormatsCorrectly) {
  const InetAddr addr = InetAddr::Loopback(8080);
  EXPECT_EQ(addr.Port(), 8080);
  EXPECT_EQ(addr.ToString(), "127.0.0.1:8080");
}

TEST(InetAddrTest, FromIpParses) {
  const InetAddr addr = InetAddr::FromIp("10.1.2.3", 99);
  EXPECT_EQ(addr.ToString(), "10.1.2.3:99");
  EXPECT_THROW(InetAddr::FromIp("not-an-ip", 1), std::invalid_argument);
}

TEST(SocketTest, BindListenAcceptConnectRoundTrip) {
  Socket listener = Socket::CreateTcp(false);
  listener.SetReuseAddr(true);
  listener.Bind(InetAddr::Loopback(0));
  listener.Listen();
  const uint16_t port = listener.LocalAddr().Port();
  ASSERT_GT(port, 0);

  Socket client = Socket::CreateTcp(false);
  client.Connect(InetAddr::Loopback(port));

  auto accepted = listener.Accept();
  ASSERT_TRUE(accepted.has_value());

  // Data flows both ways.
  ASSERT_EQ(WriteFd(client.fd(), "ping", 4).n, 4);
  char buf[8] = {};
  ASSERT_EQ(ReadFd(accepted->fd(), buf, sizeof(buf)).n, 4);
  EXPECT_EQ(std::string(buf, 4), "ping");
}

TEST(SocketTest, NonBlockingReadReturnsWouldBlock) {
  Socket listener = Socket::CreateTcp(false);
  listener.Bind(InetAddr::Loopback(0));
  listener.Listen();
  Socket client = Socket::CreateTcp(false);
  client.Connect(InetAddr::Loopback(listener.LocalAddr().Port()));
  client.SetNonBlocking(true);

  char buf[8];
  const IoResult r = ReadFd(client.fd(), buf, sizeof(buf));
  EXPECT_TRUE(r.WouldBlock());
  EXPECT_FALSE(r.Fatal());
  EXPECT_FALSE(r.Eof());
}

TEST(SocketTest, SendBufferSizeIsSettable) {
  Socket sock = Socket::CreateTcp(false);
  sock.SetSendBufferSize(16 * 1024);
  // Kernel doubles the requested value (bookkeeping overhead).
  EXPECT_GE(sock.GetSendBufferSize(), 16 * 1024);
  EXPECT_LE(sock.GetSendBufferSize(), 64 * 1024);
}

TEST(EventLoopTest, DispatchesReadableFd) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);

  EventLoop loop;
  std::atomic<int> events_seen{0};
  loop.RegisterFd(a.get(), EPOLLIN, [&](uint32_t) {
    events_seen++;
    char buf[8];
    (void)!ReadFd(a.get(), buf, sizeof(buf)).n;
    loop.Stop();
  });

  std::thread writer([&] { (void)!WriteFd(b.get(), "x", 1).n; });
  loop.Run();
  writer.join();
  EXPECT_EQ(events_seen.load(), 1);
}

TEST(EventLoopTest, QueueTaskRunsOnLoopThread) {
  EventLoop loop;
  std::atomic<int> ran_on_tid{0};
  std::thread loop_thread([&] { loop.Run(); });
  loop.QueueTask([&] {
    ran_on_tid = CurrentTid();
    loop.Stop();
  });
  loop_thread.join();
  EXPECT_NE(ran_on_tid.load(), 0);
  EXPECT_NE(ran_on_tid.load(), CurrentTid());
}

TEST(EventLoopTest, RunInLoopFromLoopThreadIsImmediate) {
  EventLoop loop;
  std::atomic<bool> inner_ran{false};
  loop.QueueTask([&] {
    loop.RunInLoop([&] { inner_ran = true; });
    EXPECT_TRUE(inner_ran.load());  // executed synchronously
    loop.Stop();
  });
  loop.Run();
}

TEST(EventLoopTest, TimerFiresApproximatelyOnTime) {
  EventLoop loop;
  const TimePoint start = Now();
  Duration fired_after{};
  loop.RunAfter(std::chrono::milliseconds(50), [&] {
    fired_after = Now() - start;
    loop.Stop();
  });
  loop.Run();
  const double ms = ToSeconds(fired_after) * 1000;
  EXPECT_GE(ms, 45.0);
  EXPECT_LT(ms, 500.0);  // generous: single shared core
}

TEST(EventLoopTest, CancelledTimerDoesNotFire) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  const auto id = loop.RunAfter(std::chrono::milliseconds(30),
                                [&] { fired = true; });
  loop.CancelTimer(id);
  loop.RunAfter(std::chrono::milliseconds(80), [&] { loop.Stop(); });
  loop.Run();
  EXPECT_FALSE(fired.load());
}

TEST(EventLoopTest, TimersFireInDeadlineOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.RunAfter(std::chrono::milliseconds(40), [&] {
    order.push_back(2);
    loop.Stop();
  });
  loop.RunAfter(std::chrono::milliseconds(10), [&] { order.push_back(1); });
  loop.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(EventLoopTest, UnregisterStopsDelivery) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);

  EventLoop loop;
  std::atomic<int> events{0};
  loop.RegisterFd(a.get(), EPOLLIN, [&](uint32_t) {
    events++;
    loop.UnregisterFd(a.get());  // unregister from inside the callback
  });
  (void)!WriteFd(b.get(), "xx", 2).n;
  loop.RunAfter(std::chrono::milliseconds(60), [&] { loop.Stop(); });
  loop.Run();
  // Level-triggered epoll would re-deliver forever if unregister failed.
  EXPECT_EQ(events.load(), 1);
}

TEST(EventLoopTest, CancelTimerFromFiringTimerSuppressesSameBatch) {
  // Two timers due in the same FireDueTimers pass: the first cancels the
  // second. A batch-collecting implementation would run the second anyway.
  EventLoop loop;
  std::atomic<bool> second_fired{false};
  EventLoop::TimerId second = 0;
  loop.RunAfter(std::chrono::milliseconds(20),
                [&] { loop.CancelTimer(second); });
  second = loop.RunAfter(std::chrono::milliseconds(20),
                         [&] { second_fired = true; });
  loop.RunAfter(std::chrono::milliseconds(120), [&] { loop.Stop(); });
  loop.Run();
  EXPECT_FALSE(second_fired.load());
}

TEST(EventLoopTest, ZeroAndNegativeDelayTimersFire) {
  EventLoop loop;
  std::atomic<int> fired{0};
  loop.RunAfter(Duration::zero(), [&] { fired++; });
  loop.RunAfter(std::chrono::milliseconds(-50), [&] { fired++; });
  loop.RunAfter(std::chrono::milliseconds(40), [&] { loop.Stop(); });
  loop.Run();
  EXPECT_EQ(fired.load(), 2);
}

TEST(EventLoopTest, ZeroDelaySelfReschedulingTimerDoesNotStarveLoop) {
  // A timer that re-arms itself with zero delay must not spin inside one
  // FireDueTimers call: tasks and other timers still get through.
  EventLoop loop;
  std::atomic<int> reschedules{0};
  std::function<void()> rearm = [&] {
    reschedules++;
    loop.RunAfter(Duration::zero(), rearm);
  };
  loop.RunAfter(Duration::zero(), rearm);
  std::atomic<bool> task_ran{false};
  loop.QueueTask([&] { task_ran = true; });
  loop.RunAfter(std::chrono::milliseconds(50), [&] { loop.Stop(); });
  loop.Run();
  EXPECT_TRUE(task_ran.load());
  EXPECT_GT(reschedules.load(), 0);
}

TEST(EventLoopTest, StopRacingQueuedTimersExitsCleanly) {
  // Stop() arriving from another thread while many short timers are queued
  // must not hang or crash the loop.
  EventLoop loop;
  std::atomic<int> fired{0};
  for (int i = 0; i < 200; ++i) {
    loop.RunAfter(std::chrono::milliseconds(i % 5), [&] { fired++; });
  }
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    loop.Stop();
  });
  const TimePoint start = Now();
  loop.Run();
  stopper.join();
  EXPECT_LT(ToSeconds(Now() - start), 5.0);
}

TEST(EventLoopTest, StopFromOtherThreadWakesBlockedLoop) {
  EventLoop loop;
  std::thread stopper([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    loop.Stop();
  });
  const TimePoint start = Now();
  loop.Run();  // no fds, no timers: parked in epoll_wait
  stopper.join();
  EXPECT_LT(ToSeconds(Now() - start), 5.0);
}

TEST(TimerWheelTest, FiresNoEarlierThanOneTick) {
  // Time is passed in explicitly, so the test is deterministic: an entry is
  // never handed out before its (tick-rounded) deadline.
  TimerWheel wheel(std::chrono::milliseconds(10), 16);
  const TimePoint base = Now();
  bool fired = false;
  wheel.Schedule(1, base + std::chrono::milliseconds(25), [&] { fired = true; });
  EXPECT_EQ(wheel.Size(), 1u);

  EXPECT_FALSE(wheel.PopDue(base).has_value());
  EXPECT_FALSE(wheel.PopDue(base + std::chrono::milliseconds(15)).has_value());
  auto task = wheel.PopDue(base + std::chrono::milliseconds(40));
  ASSERT_TRUE(task.has_value());
  (*task)();
  EXPECT_TRUE(fired);
  EXPECT_EQ(wheel.Size(), 0u);
}

TEST(TimerWheelTest, CancelReclaimsImmediately) {
  TimerWheel wheel;
  const TimePoint base = Now();
  for (TimerWheel::TimerId id = 1; id <= 100; ++id) {
    wheel.Schedule(id, base + std::chrono::seconds(30), [] {});
  }
  EXPECT_EQ(wheel.Size(), 100u);
  for (TimerWheel::TimerId id = 1; id <= 100; ++id) {
    EXPECT_TRUE(wheel.Cancel(id));
  }
  // O(1) cancel with reclamation: no dead entries linger until they pop.
  EXPECT_EQ(wheel.Size(), 0u);
  EXPECT_FALSE(wheel.Cancel(1));  // unknown id
  EXPECT_EQ(wheel.NanosUntilNextNs(base), -1);
}

TEST(TimerWheelTest, CancelFromPoppedTaskSuppressesSameBatch) {
  // Two deadlines in the same tick; the first one cancels the second while
  // it runs. The wheel must not hand out the cancelled entry afterwards.
  TimerWheel wheel(std::chrono::milliseconds(10), 16);
  const TimePoint base = Now();
  bool second_fired = false;
  wheel.Schedule(1, base + std::chrono::milliseconds(20),
                 [&] { wheel.Cancel(2); });
  wheel.Schedule(2, base + std::chrono::milliseconds(20),
                 [&] { second_fired = true; });

  const TimePoint due = base + std::chrono::milliseconds(50);
  int popped = 0;
  while (auto task = wheel.PopDue(due)) {
    (*task)();
    popped++;
  }
  EXPECT_EQ(popped, 1);
  EXPECT_FALSE(second_fired);
  EXPECT_EQ(wheel.Size(), 0u);
}

TEST(TimerWheelTest, MultiRevolutionDeadlineWaitsForWrapAround) {
  // A tiny wheel (8 slots x 5ms = 40ms/revolution) with a deadline three
  // revolutions out: the cursor passes its slot repeatedly without firing
  // it until the absolute tick is reached.
  TimerWheel wheel(std::chrono::milliseconds(5), 8);
  const TimePoint base = Now();
  bool fired = false;
  wheel.Schedule(7, base + std::chrono::milliseconds(120),
                 [&] { fired = true; });

  for (int ms = 5; ms <= 115; ms += 5) {
    EXPECT_FALSE(wheel.PopDue(base + std::chrono::milliseconds(ms)))
        << "fired early at +" << ms << "ms";
  }
  auto task = wheel.PopDue(base + std::chrono::milliseconds(130));
  ASSERT_TRUE(task.has_value());
  (*task)();
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, NanosUntilNextTracksEarliestDeadline) {
  TimerWheel wheel(std::chrono::milliseconds(10), 32);
  const TimePoint base = Now();
  EXPECT_EQ(wheel.NanosUntilNextNs(base), -1);
  wheel.Schedule(1, base + std::chrono::milliseconds(100), [] {});
  wheel.Schedule(2, base + std::chrono::milliseconds(40), [] {});
  const int64_t ns = wheel.NanosUntilNextNs(base);
  EXPECT_GT(ns, 0);
  EXPECT_LE(ns, 110 * 1000000ll);  // earliest deadline, tick-rounded
  EXPECT_EQ(wheel.NanosUntilNextNs(base + std::chrono::milliseconds(60)), 0);
  EXPECT_TRUE(wheel.Cancel(2));
  EXPECT_GT(wheel.NanosUntilNextNs(base + std::chrono::milliseconds(60)), 0);
}

TEST(EventLoopTest, CoarseTimerRoutesToWheelAndFires) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  loop.RunAfterCoarse(std::chrono::milliseconds(20), [&] { fired = true; });
  EXPECT_EQ(loop.CoarseTimerCount(), 1u);
  EXPECT_EQ(loop.PreciseTimerCount(), 0u);
  loop.RunAfter(std::chrono::milliseconds(300), [&] { loop.Stop(); });
  EXPECT_EQ(loop.PreciseTimerCount(), 1u);
  loop.Run();
  EXPECT_TRUE(fired.load());
  EXPECT_EQ(loop.CoarseTimerCount(), 0u);
}

TEST(EventLoopTest, CancelledCoarseTimerReclaimsAndDoesNotFire) {
  EventLoop loop;
  std::atomic<bool> fired{false};
  const auto id = loop.RunAfterCoarse(std::chrono::milliseconds(20),
                                      [&] { fired = true; });
  EXPECT_EQ(loop.CoarseTimerCount(), 1u);
  loop.CancelTimer(id);
  EXPECT_EQ(loop.CoarseTimerCount(), 0u);  // reclaimed immediately
  loop.RunAfter(std::chrono::milliseconds(100), [&] { loop.Stop(); });
  loop.Run();
  EXPECT_FALSE(fired.load());
}

TEST(EventLoopTest, CancelledPreciseTimersCompactHeap) {
  // Regression: CancelTimer used to leave dead entries in the heap until
  // their deadline popped. Arming and cancelling long deadlines repeatedly
  // (the connection idle-timeout pattern) must not grow the heap.
  EventLoop loop;
  for (int round = 0; round < 10; ++round) {
    std::vector<EventLoop::TimerId> ids;
    for (int i = 0; i < 100; ++i) {
      ids.push_back(loop.RunAfter(std::chrono::hours(1), [] {}));
    }
    for (const auto id : ids) loop.CancelTimer(id);
  }
  EXPECT_EQ(loop.PreciseTimerCount(), 0u);
  // Compaction keeps the heap proportional to live timers (+ slack), not
  // to the number of cancellations (1000 here).
  EXPECT_LE(loop.TimerHeapSizeForTest(), 128u);
}

TEST(EventLoopTest, WakeupCoalescingElidesLoopThreadWakes) {
  EventLoop loop;
  std::atomic<int> ran{0};
  // Queued from off-loop while the loop may be parked: must issue a real
  // eventfd write (the loop cannot be assumed awake).
  loop.QueueTask([&] {
    // Queued from the loop thread while it is demonstrably awake: every
    // one of these wakeups can be (and is) elided.
    for (int i = 0; i < 100; ++i) {
      loop.QueueTask([&] { ran++; });
    }
    loop.QueueTask([&] { loop.Stop(); });
  });
  loop.Run();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_GE(loop.WakeupWritesIssued(), 1u);
  EXPECT_GE(loop.WakeupWritesElided(), 100u);
}

TEST(EventLoopTest, CrossThreadQueueingNeverLosesTasks) {
  // Coalescing must elide only redundant wakeups, never required ones: a
  // producer hammering QueueTask from another thread has every task run.
  EventLoop loop;
  constexpr int kTasks = 2000;
  std::atomic<int> ran{0};
  std::thread loop_thread([&] { loop.Run(); });
  for (int i = 0; i < kTasks; ++i) {
    loop.QueueTask([&] { ran++; });
  }
  loop.QueueTask([&] { loop.Stop(); });
  loop_thread.join();
  EXPECT_EQ(ran.load(), kTasks);
  const uint64_t total =
      loop.WakeupWritesIssued() + loop.WakeupWritesElided();
  EXPECT_GE(total, static_cast<uint64_t>(kTasks));
}

// ---------------------------------------------------------------------------
// Backend conformance: every EventLoop contract below must hold identically
// on the epoll readiness engine and the io_uring completion engine (where
// readiness is emulated with re-armed POLL_ADD ops). Parameterized over
// IoBackendKind; uring cases skip on kernels without the required features.
// ---------------------------------------------------------------------------

class IoBackendConformanceTest
    : public ::testing::TestWithParam<IoBackendKind> {
 protected:
  void SetUp() override {
    if (GetParam() == IoBackendKind::kUring && !IoUringAvailable()) {
      GTEST_SKIP() << "io_uring unavailable on this kernel";
    }
  }
  std::unique_ptr<EventLoop> MakeLoop() {
    return std::make_unique<EventLoop>(GetParam());
  }
};

TEST_P(IoBackendConformanceTest, ReportsRequestedBackend) {
  auto loop = MakeLoop();
  EXPECT_EQ(loop->BackendKind(), GetParam());
  EXPECT_EQ(loop->BackendName(), IoBackendName(GetParam()));
}

TEST_P(IoBackendConformanceTest, FdWatcherDeliversReadable) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);

  auto loop = MakeLoop();
  std::atomic<int> events_seen{0};
  loop->RegisterFd(a.get(), EPOLLIN, [&](uint32_t) {
    events_seen++;
    char buf[8];
    (void)!ReadFd(a.get(), buf, sizeof(buf)).n;
    loop->Stop();
  });

  std::thread writer([&] { (void)!WriteFd(b.get(), "x", 1).n; });
  loop->Run();
  writer.join();
  EXPECT_EQ(events_seen.load(), 1);
}

TEST_P(IoBackendConformanceTest, LevelTriggeredReadableRefires) {
  // Level-triggered semantics: unconsumed input keeps firing the watcher
  // on every loop iteration until the callback drains it.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);
  ASSERT_EQ(WriteFd(b.get(), "abcd", 4).n, 4);

  auto loop = MakeLoop();
  int fires = 0;
  loop->RegisterFd(a.get(), EPOLLIN, [&](uint32_t) {
    // Consume one byte per delivery; the remaining bytes must re-fire.
    char c;
    ASSERT_EQ(ReadFd(a.get(), &c, 1).n, 1);
    if (++fires == 4) loop->Stop();
  });
  loop->Run();
  EXPECT_EQ(fires, 4);
}

TEST_P(IoBackendConformanceTest, ModifyFdSwitchesInterest) {
  // A watcher re-targeted from EPOLLIN to EPOLLOUT must stop seeing input
  // and start seeing (always-true here) writability.
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);
  ASSERT_EQ(WriteFd(b.get(), "x", 1).n, 1);

  auto loop = MakeLoop();
  int in_events = 0;
  int out_events = 0;
  loop->RegisterFd(a.get(), EPOLLIN, [&](uint32_t events) {
    if (events & EPOLLIN) {
      in_events++;
      char c;
      (void)!ReadFd(a.get(), &c, 1).n;
      loop->ModifyFd(a.get(), EPOLLOUT);
    }
    if (events & EPOLLOUT) {
      if (++out_events == 2) loop->Stop();  // level-triggered: refires
    }
  });
  loop->Run();
  EXPECT_EQ(in_events, 1);
  EXPECT_EQ(out_events, 2);
}

TEST_P(IoBackendConformanceTest, UnregisterStopsDelivery) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd a(fds[0]), b(fds[1]);
  ASSERT_EQ(WriteFd(b.get(), "xx", 2).n, 2);

  auto loop = MakeLoop();
  std::atomic<int> events_seen{0};
  loop->RegisterFd(a.get(), EPOLLIN, [&](uint32_t) {
    events_seen++;
    loop->UnregisterFd(a.get());
    // The socket still has an unread byte: without the unregister this
    // would fire again. Give the loop two more iterations to prove it
    // does not, then stop.
    loop->RunAfter(std::chrono::milliseconds(50), [&] { loop->Stop(); });
  });
  loop->Run();
  EXPECT_EQ(events_seen.load(), 1);
}

TEST_P(IoBackendConformanceTest, PreciseAndCoarseTimersFire) {
  auto loop = MakeLoop();
  const TimePoint start = Now();
  TimePoint precise_fired{};
  TimePoint coarse_fired{};
  // Precise (heap) timer and coarse (wheel) timer must both route
  // through the backend's wait timeout and fire near their deadlines.
  loop->RunAfter(std::chrono::milliseconds(20),
                 [&] { precise_fired = Now(); });
  loop->RunAfterCoarse(std::chrono::milliseconds(40), [&] {
    coarse_fired = Now();
    loop->Stop();
  });
  loop->Run();
  ASSERT_NE(precise_fired, TimePoint{});
  ASSERT_NE(coarse_fired, TimePoint{});
  EXPECT_GE(precise_fired - start, std::chrono::milliseconds(18));
  // Wheel timers fire on tick boundaries; only bound them loosely.
  EXPECT_LT(coarse_fired - start, std::chrono::seconds(5));
}

TEST_P(IoBackendConformanceTest, WakeupCoalescingElidesLoopThreadWakes) {
  auto loop = MakeLoop();
  std::atomic<int> ran{0};
  loop->QueueTask([&] {
    for (int i = 0; i < 100; ++i) {
      loop->QueueTask([&] { ran++; });
    }
    loop->QueueTask([&] { loop->Stop(); });
  });
  loop->Run();
  EXPECT_EQ(ran.load(), 100);
  EXPECT_GE(loop->WakeupWritesIssued(), 1u);
  EXPECT_GE(loop->WakeupWritesElided(), 100u);
}

TEST_P(IoBackendConformanceTest, CrossThreadQueueingNeverLosesTasks) {
  auto loop = MakeLoop();
  constexpr int kTasks = 2000;
  std::atomic<int> ran{0};
  std::thread loop_thread([&] { loop->Run(); });
  for (int i = 0; i < kTasks; ++i) {
    loop->QueueTask([&] { ran++; });
  }
  loop->QueueTask([&] { loop->Stop(); });
  loop_thread.join();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST_P(IoBackendConformanceTest, StopFromOtherThreadWakesBlockedLoop) {
  auto loop = MakeLoop();
  std::thread loop_thread([&] { loop->Run(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  loop->Stop();
  loop_thread.join();  // must not hang
}

TEST_P(IoBackendConformanceTest, AcceptorAcceptsConnections) {
  // On the completion engine the acceptor switches to multishot
  // IORING_OP_ACCEPT; on epoll it stays a readiness watcher. Same
  // observable contract either way.
  auto loop = MakeLoop();
  std::atomic<int> accepted{0};
  Acceptor acceptor(*loop, InetAddr::Loopback(0),
                    [&](Socket /*s*/, const InetAddr&) {
                      if (++accepted == 3) loop->Stop();
                    });
  acceptor.Listen();
  const uint16_t port = acceptor.Port();

  std::thread clients([&] {
    std::vector<Socket> socks;
    for (int i = 0; i < 3; ++i) {
      socks.push_back(Socket::CreateTcp(false));
      socks.back().Connect(InetAddr::Loopback(port));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  });
  loop->Run();
  clients.join();
  EXPECT_EQ(accepted.load(), 3);
}

INSTANTIATE_TEST_SUITE_P(
    Backends, IoBackendConformanceTest,
    ::testing::Values(IoBackendKind::kEpoll, IoBackendKind::kUring),
    [](const ::testing::TestParamInfo<IoBackendKind>& info) {
      return std::string(IoBackendName(info.param));
    });

TEST(AcceptorTest, AcceptsMultipleConnections) {
  EventLoop loop;
  std::atomic<int> accepted{0};
  Acceptor acceptor(loop, InetAddr::Loopback(0),
                    [&](Socket /*s*/, const InetAddr&) {
                      accepted++;
                      if (accepted == 3) loop.Stop();
                    });
  acceptor.Listen();
  const uint16_t port = acceptor.Port();

  std::thread clients([&] {
    std::vector<Socket> socks;
    for (int i = 0; i < 3; ++i) {
      socks.push_back(Socket::CreateTcp(false));
      socks.back().Connect(InetAddr::Loopback(port));
    }
    // Keep them open until the loop exits.
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  });
  loop.Run();
  clients.join();
  EXPECT_EQ(accepted.load(), 3);
}

}  // namespace
}  // namespace hynet
