// End-to-end smoke tests: every architecture serves real HTTP over
// loopback under the closed-loop load generator.
#include <gtest/gtest.h>

#include "client/bench_runner.h"
#include "client/load_gen.h"
#include "core/hybrid_server.h"
#include "servers/server.h"

namespace hynet {
namespace {

class AllArchitectures
    : public ::testing::TestWithParam<ServerArchitecture> {};

TEST_P(AllArchitectures, ServesRequestsUnderClosedLoop) {
  ServerConfig sc;
  sc.architecture = GetParam();
  sc.worker_threads = 4;
  sc.event_loops = 1;
  auto server = CreateServer(sc, MakeBenchHandler());
  server->Start();
  ASSERT_GT(server->Port(), 0);

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 8;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.3;
  lc.targets = {{BenchTarget(512, 0), 1.0}};
  const LoadResult result = RunLoad(lc);

  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.completed, 50u) << "architecture should sustain load";
  EXPECT_GT(result.Throughput(), 100.0);

  const ServerCounters counters = server->Snapshot();
  EXPECT_GE(counters.requests_handled, result.completed);
  EXPECT_EQ(counters.connections_accepted, 8u);
  EXPECT_FALSE(server->ThreadIds().empty());
  server->Stop();
}

TEST_P(AllArchitectures, LargeResponsesArriveIntact) {
  ServerConfig sc;
  sc.architecture = GetParam();
  sc.worker_threads = 2;
  auto server = CreateServer(sc, MakeBenchHandler());
  server->Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 4;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.4;
  lc.targets = {{BenchTarget(100 * 1024, 0), 1.0}};
  const LoadResult result = RunLoad(lc);

  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.completed, 5u);
  server->Stop();
}

TEST_P(AllArchitectures, StartStopIsIdempotentAndRestartable) {
  ServerConfig sc;
  sc.architecture = GetParam();
  sc.worker_threads = 2;
  auto server = CreateServer(sc, MakeBenchHandler());
  server->Start();
  server->Stop();
  server->Stop();  // second Stop must be a no-op
}

INSTANTIATE_TEST_SUITE_P(
    Architectures, AllArchitectures,
    ::testing::Values(ServerArchitecture::kThreadPerConn,
                      ServerArchitecture::kReactorPool,
                      ServerArchitecture::kReactorPoolFix,
                      ServerArchitecture::kSingleThread,
                      ServerArchitecture::kMultiLoop,
                      ServerArchitecture::kHybrid,
                      ServerArchitecture::kStaged,
                      ServerArchitecture::kSingleThreadNCopy),
    [](const ::testing::TestParamInfo<ServerArchitecture>& param_info) {
      std::string name = ArchitectureName(param_info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace hynet
