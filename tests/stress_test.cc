// Robustness tests: abrupt disconnects mid-response, connection churn,
// oversized requests, zero-length responses, and slow-loris-style partial
// requests — failure modes a production server must absorb without
// crashing, leaking, or wedging.
#include <gtest/gtest.h>

#include <thread>

#include "client/bench_runner.h"
#include "client/load_gen.h"
#include "core/hybrid_server.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"

namespace hynet {
namespace {

const ServerArchitecture kAllArchs[] = {
    ServerArchitecture::kThreadPerConn, ServerArchitecture::kReactorPool,
    ServerArchitecture::kReactorPoolFix, ServerArchitecture::kSingleThread,
    ServerArchitecture::kMultiLoop,      ServerArchitecture::kHybrid,
    ServerArchitecture::kStaged,
    ServerArchitecture::kSingleThreadNCopy,
};

std::unique_ptr<Server> StartArch(ServerArchitecture arch) {
  ServerConfig config;
  config.architecture = arch;
  config.worker_threads = 2;
  config.stage_threads = 1;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  return server;
}

// A client that requests a large response and slams the connection shut
// after the first bytes arrive. The server's write path must surface
// EPIPE/RST and clean the connection up.
TEST(AbruptDisconnect, MidResponseCloseDoesNotCrashAnyArchitecture) {
  for (ServerArchitecture arch : kAllArchs) {
    auto server = StartArch(arch);
    for (int round = 0; round < 5; ++round) {
      Socket sock = Socket::CreateTcp(false);
      sock.SetRecvBufferSize(4 * 1024);
      sock.Connect(InetAddr::Loopback(server->Port()));
      const std::string wire = BuildGetRequest(BenchTarget(400 * 1024, 0));
      ASSERT_GT(WriteFd(sock.fd(), wire.data(), wire.size()).n, 0);
      char buf[1024];
      (void)!ReadFd(sock.fd(), buf, sizeof(buf)).n;  // first bytes only
      // Destructor closes abruptly with unread data => RST.
    }
    // Server must still answer.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    LoadConfig lc;
    lc.server = InetAddr::Loopback(server->Port());
    lc.connections = 2;
    lc.warmup_sec = 0.02;
    lc.measure_sec = 0.1;
    lc.targets = {{BenchTarget(128, 0), 1.0}};
    const LoadResult r = RunLoad(lc);
    EXPECT_EQ(r.errors, 0u) << ArchitectureName(arch);
    EXPECT_GT(r.completed, 5u) << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(ConnectionChurn, OpenCloseStormLeavesServerHealthy) {
  for (ServerArchitecture arch :
       {ServerArchitecture::kReactorPool, ServerArchitecture::kMultiLoop,
        ServerArchitecture::kHybrid, ServerArchitecture::kStaged}) {
    auto server = StartArch(arch);
    for (int i = 0; i < 60; ++i) {
      Socket sock = Socket::CreateTcp(false);
      sock.Connect(InetAddr::Loopback(server->Port()));
      if (i % 3 == 0) {
        // Sometimes send a partial request before closing.
        (void)!WriteFd(sock.fd(), "GET /par", 8).n;
      }
      // Immediate close.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    const ServerCounters c = server->Snapshot();
    EXPECT_GE(c.connections_accepted, 60u) << ArchitectureName(arch);
    // All churned connections eventually close server-side.
    EXPECT_GE(c.connections_closed, 50u) << ArchitectureName(arch);
    server->Stop();
  }
}

// Accept→request→close churn with the buffer pool in the loop: recycled
// read buffers must never leak bytes between connections or dangle after
// close (this test is the pool's ASan/UBSan coverage in CI).
TEST(ConnectionChurn, BufferPoolRecyclesAcrossConnections) {
  for (ServerArchitecture arch : kAllArchs) {
    auto server = StartArch(arch);
    for (int i = 0; i < 40; ++i) {
      Socket sock = Socket::CreateTcp(false);
      sock.Connect(InetAddr::Loopback(server->Port()));
      const std::string wire =
          BuildGetRequest(BenchTarget(256, 0), /*keep_alive=*/false);
      ASSERT_GT(WriteFd(sock.fd(), wire.data(), wire.size()).n, 0);
      std::string got;
      char buf[8 * 1024];
      while (true) {
        const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
        if (r.n <= 0) break;
        got.append(buf, static_cast<size_t>(r.n));
      }
      EXPECT_NE(got.find("200 OK"), std::string::npos)
          << ArchitectureName(arch) << " round " << i;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const MetricsSnapshot snap = server->metrics().Scrape();
    // Sequential close-then-reconnect churn must hit the free list, and
    // every released buffer must balance an acquired one.
    EXPECT_GT(snap.CounterValue("buffer_pool_hits"), 0u)
        << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(SlowLoris, PartialRequestDoesNotBlockOtherClients) {
  // One byte-at-a-time client must not stop a concurrent fast client —
  // even on the single-threaded server (it only blocks on *writes*).
  auto server = StartArch(ServerArchitecture::kSingleThread);

  Socket slow = Socket::CreateTcp(false);
  slow.Connect(InetAddr::Loopback(server->Port()));
  (void)!WriteFd(slow.fd(), "GET /slow", 9).n;  // never completes

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 4;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.2;
  lc.targets = {{BenchTarget(128, 0), 1.0}};
  const LoadResult r = RunLoad(lc);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.completed, 50u);
  server->Stop();
}

TEST(OversizedHead, RejectedWithoutResourceBlowup) {
  auto server = StartArch(ServerArchitecture::kHybrid);
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  // 80KB of header bytes without a terminator: parser must error out
  // (64KB cap) and the server must answer 431 (if the abort didn't race
  // our writes into an RST) and close the connection.
  std::string junk = "GET / HTTP/1.1\r\n";
  junk += std::string(80 * 1024, 'h');
  size_t off = 0;
  while (off < junk.size()) {
    const IoResult r =
        WriteFd(sock.fd(), junk.data() + off, junk.size() - off);
    if (r.Fatal() || r.WouldBlock()) break;
    off += static_cast<size_t>(r.n);
  }
  char buf[256];
  const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
  if (r.n > 0) {
    // Server got the whole head before erroring: it must reject, not 200.
    EXPECT_EQ(std::string(buf, 12), "HTTP/1.1 431");
  }
  server->Stop();
}

TEST(ZeroLengthBody, ServedCorrectly) {
  for (ServerArchitecture arch : kAllArchs) {
    auto server = StartArch(arch);
    LoadConfig lc;
    lc.server = InetAddr::Loopback(server->Port());
    lc.connections = 2;
    lc.warmup_sec = 0.02;
    lc.measure_sec = 0.1;
    lc.targets = {{BenchTarget(0, 0), 1.0}};
    const LoadResult r = RunLoad(lc);
    EXPECT_EQ(r.errors, 0u) << ArchitectureName(arch);
    EXPECT_GT(r.completed, 10u) << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(HandlerThrows, ConnectionSurvivesOrClosesButServerLives) {
  // A throwing handler must never take the server down. (Worker pools
  // swallow and log; loop-thread architectures would terminate — so the
  // public contract is: handlers must not throw; this test pins the
  // pool-based architectures' defensive behaviour.)
  for (ServerArchitecture arch : {ServerArchitecture::kReactorPool,
                                  ServerArchitecture::kReactorPoolFix,
                                  ServerArchitecture::kStaged}) {
    ServerConfig config;
    config.architecture = arch;
    config.worker_threads = 2;
    config.stage_threads = 1;
    std::atomic<int> calls{0};
    auto server = CreateServer(config, [&calls](const HttpRequest&,
                                                HttpResponse& resp) {
      if (calls++ == 0) throw std::runtime_error("handler bug");
      resp.body = "ok";
    });
    server->Start();

    // First request hits the throwing path; the connection may hang
    // (response never produced), so use a short deadline then continue.
    {
      Socket sock = Socket::CreateTcp(false);
      sock.Connect(InetAddr::Loopback(server->Port()));
      const std::string wire = BuildGetRequest("/boom");
      (void)!WriteFd(sock.fd(), wire.data(), wire.size()).n;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    // Server must still serve fresh connections.
    LoadConfig lc;
    lc.server = InetAddr::Loopback(server->Port());
    lc.connections = 2;
    lc.warmup_sec = 0.02;
    lc.measure_sec = 0.1;
    lc.targets = {{"/fine", 1.0}};
    const LoadResult r = RunLoad(lc);
    EXPECT_GT(r.completed, 5u) << ArchitectureName(arch);
    server->Stop();
  }
}

// --- Dispatch path (batched handoff / wakeup coalescing / pinning) ---

std::unique_ptr<Server> StartArchWithConfig(ServerArchitecture arch,
                                            int dispatch_batch,
                                            bool pin_cpus) {
  ServerConfig config;
  config.architecture = arch;
  config.worker_threads = 2;
  config.stage_threads = 1;
  config.dispatch_batch = dispatch_batch;
  config.pin_cpus = pin_cpus;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  return server;
}

LoadResult SmallLoad(uint16_t port, int connections = 4) {
  LoadConfig lc;
  lc.server = InetAddr::Loopback(port);
  lc.connections = connections;
  lc.warmup_sec = 0.02;
  lc.measure_sec = 0.15;
  lc.targets = {{BenchTarget(128, 0), 1.0}};
  return RunLoad(lc);
}

TEST(DispatchPath, BatchedDispatchServesAllArchitectures) {
  // dispatch_batch > 1 changes the handoff shape, never the results: every
  // architecture (including the ones that ignore the knob) still answers
  // every request correctly.
  for (ServerArchitecture arch : kAllArchs) {
    auto server = StartArchWithConfig(arch, /*dispatch_batch=*/8,
                                      /*pin_cpus=*/false);
    const LoadResult r = SmallLoad(server->Port());
    EXPECT_EQ(r.errors, 0u) << ArchitectureName(arch);
    EXPECT_GT(r.completed, 10u) << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(DispatchPath, PinnedCpusServeAllArchitectures) {
  for (ServerArchitecture arch : kAllArchs) {
    auto server = StartArchWithConfig(arch, /*dispatch_batch=*/1,
                                      /*pin_cpus=*/true);
    const LoadResult r = SmallLoad(server->Port());
    EXPECT_EQ(r.errors, 0u) << ArchitectureName(arch);
    EXPECT_GT(r.completed, 10u) << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(DispatchPath, WakeupCountersAdvanceAndScrapeMatchesSnapshot) {
  // Every event-loop-based architecture must account each cross-thread
  // wakeup as either issued or elided, and the registry scrape must agree
  // with Snapshot() for the new dispatch counters.
  for (ServerArchitecture arch : kAllArchs) {
    auto server = StartArch(arch);
    const LoadResult r = SmallLoad(server->Port());
    ASSERT_EQ(r.errors, 0u) << ArchitectureName(arch);
    const ServerCounters c = server->Snapshot();
    const bool cross_thread_completions =
        arch == ServerArchitecture::kReactorPool ||
        arch == ServerArchitecture::kReactorPoolFix ||
        arch == ServerArchitecture::kStaged ||
        arch == ServerArchitecture::kHybrid ||
        arch == ServerArchitecture::kMultiLoop;
    if (cross_thread_completions) {
      // Workers flush responses via RunInLoop (and the multi-loop boss
      // hands off accepts), so wakeups must have been recorded — issued
      // or coalesced away — under load. The single-threaded architectures
      // never leave the loop thread: zero on both counters is correct.
      EXPECT_GT(c.wakeup_writes_issued + c.wakeup_writes_elided, 0u)
          << ArchitectureName(arch);
    }
    // Scrape parity: the registry bridge reads the same sources as
    // Snapshot(). Counters may still tick between the two reads (idle
    // sweeps re-arm timers), so sandwich the snapshot between two scrapes
    // and require monotonic agreement.
    const ServerCounters after =
        CountersFromRegistry(server->metrics().Scrape());
    EXPECT_LE(c.wakeup_writes_issued, after.wakeup_writes_issued)
        << ArchitectureName(arch);
    EXPECT_LE(c.wakeup_writes_elided, after.wakeup_writes_elided)
        << ArchitectureName(arch);
    EXPECT_LE(c.dispatch_batches, after.dispatch_batches)
        << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(DispatchPath, BatchedReactorPoolCountsHandoffs) {
  // With batching on, the reactor+pool servers must account one
  // dispatch_batches increment per handoff and amortize events across
  // them (handoffs <= events dispatched).
  for (ServerArchitecture arch : {ServerArchitecture::kReactorPool,
                                  ServerArchitecture::kReactorPoolFix,
                                  ServerArchitecture::kStaged}) {
    auto server = StartArchWithConfig(arch, /*dispatch_batch=*/8,
                                      /*pin_cpus=*/false);
    const LoadResult r = SmallLoad(server->Port(), /*connections=*/8);
    ASSERT_EQ(r.errors, 0u) << ArchitectureName(arch);
    const ServerCounters c = server->Snapshot();
    EXPECT_GT(c.dispatch_batches, 0u) << ArchitectureName(arch);
    // Each handoff carries >= 1 event; events are roughly one per request
    // plus per-connection EOF/close events, so handoffs can never exceed
    // that ceiling.
    EXPECT_LE(c.dispatch_batches,
              c.requests_handled + 4 * c.connections_accepted)
        << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(RapidRestart, PortsReleasedCleanly) {
  for (int i = 0; i < 3; ++i) {
    auto server = StartArch(ServerArchitecture::kMultiLoop);
    const uint16_t port = server->Port();
    EXPECT_GT(port, 0);
    server->Stop();
  }
}

}  // namespace
}  // namespace hynet
