// Resilience-plane tests: per-request deadlines (parse, scoping,
// propagation), the CoDel-style queue-delay shedder, the budgeted retry
// policy, the circuit-breaker state machine, the Server admission wrapper
// (504 fast-fail, 503 shed + Retry-After, deadline margin), and
// end-to-end deadline propagation across the 3-tier rubbos chain.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "client/bench_runner.h"
#include "client/retry.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "rubbos/app_logic.h"
#include "rubbos/system.h"
#include "runtime/circuit_breaker.h"
#include "runtime/overload.h"
#include "servers/server.h"

namespace hynet {
namespace {

using HeaderList = std::vector<std::pair<std::string, std::string>>;

// Blocking one-shot HTTP exchange with arbitrary request headers (the
// plain-load helpers cannot carry X-Hynet-Deadline-Ms).
HttpResponse FetchWithHeaders(uint16_t port, const std::string& target,
                              const HeaderList& headers) {
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(port));
  const std::string wire = BuildGetRequest(target, headers);
  size_t off = 0;
  while (off < wire.size()) {
    const IoResult r =
        WriteFd(sock.fd(), wire.data() + off, wire.size() - off);
    if (r.Fatal()) throw std::runtime_error("write failed");
    off += static_cast<size_t>(r.n);
  }
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  while (true) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) return parser.response();
    if (st == ParseStatus::kError) throw std::runtime_error("parse error");
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    if (r.n <= 0) throw std::runtime_error("connection lost");
    in.Append(buf, static_cast<size_t>(r.n));
  }
}

std::string HeaderValue(const HttpResponse& resp, std::string_view name) {
  for (const auto& [key, value] : resp.headers) {
    if (key == name) return value;
  }
  return "";
}

// ---- Deadline ----

TEST(Deadline, DefaultIsInvalidAndNeverExpires) {
  const Deadline d;
  EXPECT_FALSE(d.valid());
  EXPECT_FALSE(d.Expired());
  EXPECT_EQ(d.RemainingMillis(), 0);
}

TEST(Deadline, FromMillisTracksAnchor) {
  const TimePoint anchor = Now();
  const Deadline d = Deadline::FromMillis(100, anchor);
  EXPECT_TRUE(d.valid());
  EXPECT_FALSE(d.Expired());
  EXPECT_GT(d.RemainingMillis(), 0);
  EXPECT_LE(d.RemainingMillis(), 100);

  // Anchored in the past: already dead, remaining clamps at zero.
  const Deadline past =
      Deadline::FromMillis(10, anchor - std::chrono::milliseconds(50));
  EXPECT_TRUE(past.Expired());
  EXPECT_EQ(past.RemainingMillis(), 0);
}

TEST(Deadline, ParsesHeaderCaseInsensitively) {
  HttpRequest req;
  req.headers.emplace_back("x-hynet-deadline-ms", "250");
  const Deadline d = DeadlineFromRequest(req, Now());
  EXPECT_TRUE(d.valid());
  EXPECT_GT(d.RemainingMillis(), 0);
  EXPECT_LE(d.RemainingMillis(), 250);
}

TEST(Deadline, AbsentOrMalformedHeaderMeansNoBudget) {
  HttpRequest none;
  EXPECT_FALSE(DeadlineFromRequest(none, Now()).valid());

  HttpRequest junk;
  junk.headers.emplace_back(kDeadlineHeader, "soon");
  EXPECT_FALSE(DeadlineFromRequest(junk, Now()).valid());

  HttpRequest negative;
  negative.headers.emplace_back(kDeadlineHeader, "-5");
  EXPECT_FALSE(DeadlineFromRequest(negative, Now()).valid());
}

TEST(Deadline, ScopedInstallNestsAndRestores) {
  EXPECT_FALSE(CurrentRequestDeadline().valid());
  {
    ScopedRequestDeadline outer(Deadline::FromMillis(1000));
    EXPECT_TRUE(CurrentRequestDeadline().valid());
    const TimePoint outer_at = CurrentRequestDeadline().at();
    {
      ScopedRequestDeadline inner(Deadline::FromMillis(10));
      EXPECT_LT(CurrentRequestDeadline().at(), outer_at);
    }
    EXPECT_EQ(CurrentRequestDeadline().at(), outer_at);
  }
  EXPECT_FALSE(CurrentRequestDeadline().valid());
}

TEST(Deadline, EffectiveRequestStartPrefersDispatchStamp) {
  const TimePoint now = Now();
  // No stamps on a fresh thread: zero sojourn.
  std::thread([&] {
    EXPECT_EQ(EffectiveRequestStart(now), now);
    const TimePoint enq = now - std::chrono::milliseconds(7);
    ScopedDispatchStart scope(enq);
    EXPECT_EQ(EffectiveRequestStart(now), enq);
  }).join();
}

// ---- QueueDelayShedder ----

TEST(QueueDelayShedder, PromptDispatchNeverSheds) {
  QueueDelayShedder shedder(/*target_ms=*/5, /*interval_ms=*/20);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(shedder.ShouldShed(std::chrono::milliseconds(1)));
  }
  EXPECT_FALSE(shedder.Overloaded());
  EXPECT_EQ(shedder.ShedCount(), 0u);
}

TEST(QueueDelayShedder, ToleratesBurstThenTripsAfterIntervalThenRecovers) {
  QueueDelayShedder shedder(/*target_ms=*/5, /*interval_ms=*/30);
  // First above-target observation opens the excursion but does not shed.
  EXPECT_FALSE(shedder.ShouldShed(std::chrono::milliseconds(20)));
  EXPECT_FALSE(shedder.Overloaded());

  // The delay stays above target for a whole interval: shedding engages.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(shedder.ShouldShed(std::chrono::milliseconds(20)));
  EXPECT_TRUE(shedder.Overloaded());
  EXPECT_GE(shedder.ShedCount(), 1u);

  // One prompt dispatch ends the excursion (CoDel's exit condition).
  EXPECT_FALSE(shedder.ShouldShed(std::chrono::milliseconds(1)));
  EXPECT_FALSE(shedder.Overloaded());
}

TEST(QueueDelayShedder, RetryAfterRoundsIntervalUpToSeconds) {
  EXPECT_EQ(QueueDelayShedder(5, 30).RetryAfterSec(), 1);
  EXPECT_EQ(QueueDelayShedder(5, 2500).RetryAfterSec(), 3);
}

// ---- RetryPolicy ----

TEST(RetryPolicy, RefusesNonIdempotentAndExhaustedAttempts) {
  RetryPolicyConfig config;
  config.max_attempts = 3;
  RetryPolicy policy(config, /*seed=*/7);
  EXPECT_FALSE(policy.NextRetryDelay(1, /*idempotent=*/false, 0).has_value());
  EXPECT_TRUE(policy.NextRetryDelay(1, /*idempotent=*/true, 0).has_value());
  EXPECT_TRUE(policy.NextRetryDelay(2, /*idempotent=*/true, 0).has_value());
  // Attempt 3 of max 3: no tries left.
  EXPECT_FALSE(policy.NextRetryDelay(3, /*idempotent=*/true, 0).has_value());
}

TEST(RetryPolicy, BackoffIsCappedAndHonorsRetryAfterFloor) {
  RetryPolicyConfig config;
  config.max_attempts = 32;
  config.base_backoff_ms = 5.0;
  config.max_backoff_ms = 40.0;
  config.initial_tokens = 100.0;
  config.max_tokens = 100.0;
  RetryPolicy policy(config, /*seed=*/11);
  for (int attempt = 1; attempt <= 10; ++attempt) {
    const auto delay = policy.NextRetryDelay(attempt, true, 0);
    ASSERT_TRUE(delay.has_value());
    EXPECT_LE(*delay, std::chrono::milliseconds(40));
  }
  // A server hint is a floor: full jitter may not undercut it.
  const auto floored = policy.NextRetryDelay(1, true, /*retry_after_sec=*/2);
  ASSERT_TRUE(floored.has_value());
  EXPECT_GE(*floored, std::chrono::seconds(2));
}

TEST(RetryPolicy, TokenBucketBoundsRetries) {
  RetryPolicyConfig config;
  config.max_attempts = 2;  // every request may retry once
  config.budget_ratio = 0.5;
  config.initial_tokens = 2.0;
  config.max_tokens = 100.0;
  RetryPolicy policy(config, /*seed=*/3);

  // Drain the initial tokens, then the bucket refuses.
  EXPECT_TRUE(policy.NextRetryDelay(1, true, 0).has_value());
  EXPECT_TRUE(policy.NextRetryDelay(1, true, 0).has_value());
  EXPECT_FALSE(policy.NextRetryDelay(1, true, 0).has_value());
  EXPECT_EQ(policy.RetriesIssued(), 2u);
  EXPECT_EQ(policy.BudgetExhausted(), 1u);

  // Successes earn budget_ratio tokens each: two successes = one retry.
  policy.OnSuccess();
  policy.OnSuccess();
  EXPECT_EQ(policy.Successes(), 2u);
  EXPECT_TRUE(policy.NextRetryDelay(1, true, 0).has_value());
  EXPECT_FALSE(policy.NextRetryDelay(1, true, 0).has_value());

  // The whole-run invariant the overload bench asserts.
  EXPECT_LE(static_cast<double>(policy.RetriesIssued()),
            config.initial_tokens +
                config.budget_ratio * static_cast<double>(policy.Successes()));
}

// ---- CircuitBreaker ----

TEST(CircuitBreaker, TripsOnFailureRateAndFastFailsWhileOpen) {
  CircuitBreakerConfig config;
  config.min_requests = 4;
  config.failure_ratio = 0.5;
  config.open_ms = 10'000;  // stays open for the whole test
  CircuitBreaker breaker(config);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.OnFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.Trips(), 1u);
  EXPECT_FALSE(breaker.Allow());  // fast fail, no downstream call
}

TEST(CircuitBreaker, StaysClosedBelowMinRequests) {
  CircuitBreakerConfig config;
  config.min_requests = 10;
  CircuitBreaker breaker(config);
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(breaker.Allow());
    breaker.OnFailure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreaker, HalfOpenProbeSuccessClosesFailureReopens) {
  CircuitBreakerConfig config;
  config.min_requests = 4;
  config.open_ms = 40;
  config.half_open_probes = 1;
  CircuitBreaker breaker(config);
  for (int i = 0; i < 4; ++i) {
    breaker.Allow();
    breaker.OnFailure();
  }
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // After open_ms one probe passes; concurrent requests keep failing fast.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // probe slot taken

  // Probe fails: re-open for another full period.
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.Trips(), 2u);

  // Next probe succeeds: closed, and the old failure window is forgotten.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(breaker.Allow());
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

// ---- Server admission wrapper ----

TEST(ServerDeadline, DeadRequestFastFails504) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  config.deadline_propagation = true;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  // A zero budget is dead on arrival: 504 without running the handler.
  const HttpResponse dead = FetchWithHeaders(
      server->Port(), BenchTarget(64, 0), {{kDeadlineHeader, "0"}});
  EXPECT_EQ(dead.status, 504);
  EXPECT_GE(server->Snapshot().deadline_expired, 1u);

  // A generous budget is served; no budget at all is served (no deadline).
  EXPECT_EQ(FetchWithHeaders(server->Port(), BenchTarget(64, 0),
                             {{kDeadlineHeader, "5000"}})
                .status,
            200);
  EXPECT_EQ(FetchWithHeaders(server->Port(), BenchTarget(64, 0), {}).status,
            200);
  server->Stop();
}

TEST(ServerDeadline, ResponseCompletedPastBudgetIsReplacedWith504) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  config.deadline_propagation = true;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  // 10ms budget, 60ms handler burn: the work completes, but serving the
  // payload would be a response past its deadline — the wrapper swaps in
  // a 504 instead.
  const HttpResponse resp = FetchWithHeaders(
      server->Port(), BenchTarget(1024, 60'000), {{kDeadlineHeader, "10"}});
  EXPECT_EQ(resp.status, 504);
  EXPECT_GE(server->Snapshot().deadline_expired, 1u);
  server->Stop();
}

TEST(ServerDeadline, MarginAnchorsDeadlineEarlier) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  config.deadline_propagation = true;
  config.deadline_margin_ms = 200;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  // The 100ms budget is real, but the 200ms return-leg margin eats it
  // whole: dead on arrival. Budgets above the margin still get served.
  EXPECT_EQ(FetchWithHeaders(server->Port(), BenchTarget(64, 0),
                             {{kDeadlineHeader, "100"}})
                .status,
            504);
  EXPECT_EQ(FetchWithHeaders(server->Port(), BenchTarget(64, 0),
                             {{kDeadlineHeader, "5000"}})
                .status,
            200);
  server->Stop();
}

TEST(ServerConfigValidate, RejectsNegativeMarginAndBadShedInterval) {
  ServerConfig config;
  config.deadline_margin_ms = -1;
  EXPECT_FALSE(config.Validate().empty());

  ServerConfig shed;
  shed.shed_target_delay_ms = 5;
  shed.shed_interval_ms = 0;
  EXPECT_FALSE(shed.Validate().empty());
}

TEST(ServerShedding, QueueDelaySheds503WithRetryAfterUnderOverload) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  config.shed_target_delay_ms = 5;
  config.shed_interval_ms = 20;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  const uint16_t port = server->Port();

  // Overload the single loop: 8 closed-loop clients, 20ms of CPU each.
  // Requests arriving behind a burning handler see sojourn far over the
  // 5ms target; once that holds for one 20ms interval the shedder trips.
  std::atomic<bool> stop{false};
  std::atomic<int> shed_seen{0};
  std::atomic<bool> retry_after_seen{false};
  std::vector<std::thread> clients;
  for (int i = 0; i < 8; ++i) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        try {
          const HttpResponse resp =
              FetchWithHeaders(port, BenchTarget(64, 20'000), {});
          if (resp.status == 503) {
            shed_seen.fetch_add(1, std::memory_order_relaxed);
            if (!HeaderValue(resp, "Retry-After").empty()) {
              retry_after_seen.store(true, std::memory_order_relaxed);
            }
          }
        } catch (...) {
          break;
        }
      }
    });
  }

  const TimePoint give_up = Now() + std::chrono::seconds(10);
  bool overloaded_observed = false;
  while (Now() < give_up) {
    overloaded_observed = overloaded_observed || server->Overloaded();
    if (shed_seen.load(std::memory_order_relaxed) > 0 && overloaded_observed) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stop = true;
  for (auto& t : clients) t.join();

  EXPECT_GT(shed_seen.load(), 0);
  EXPECT_TRUE(retry_after_seen.load());
  EXPECT_TRUE(overloaded_observed);  // what /healthz reports as overloaded
  EXPECT_GE(server->Snapshot().sheds_queue_delay, 1u);
  server->Stop();
}

// ---- 3-tier deadline propagation ----

TEST(ThreeTierDeadline, BudgetPropagatesAndExpiresAtTheAppTier) {
  rubbos::ThreeTierConfig sys;
  sys.app_architecture = ServerArchitecture::kThreadPerConn;
  sys.app_worker_threads = 2;
  sys.db_connection_pool = 4;
  sys.web_upstream_pool = 8;
  sys.db_stories = 50;
  sys.db_users = 20;
  sys.db_comments_per_story = 2;
  sys.deadline_propagation = true;
  // ViewStory burns 260us of servlet CPU; x200 = ~52ms, far past the
  // budget below — the request must die at the app tier, not up front.
  sys.app_cpu_multiplier = 200.0;

  rubbos::ThreeTierSystem system(sys);
  system.Start();
  const std::string target =
      rubbos::InteractionTarget(rubbos::InteractionIndex("ViewStory"), 1, 1, 0);

  // A budget that survives the web hop but not the app-tier burn. The
  // 504 proves the header crossed the web -> app hop with a live budget
  // (without propagation the app would happily return 200).
  bool app_expired = false;
  for (int i = 0; i < 10 && !app_expired; ++i) {
    const HttpResponse resp = FetchWithHeaders(system.FrontPort(), target,
                                               {{kDeadlineHeader, "30"}});
    EXPECT_EQ(resp.status, 504) << "attempt " << i;
    app_expired = system.AppSnapshot().deadline_expired >= 1;
  }
  EXPECT_TRUE(app_expired);

  // A generous budget flows through all three tiers and comes back 200.
  EXPECT_EQ(FetchWithHeaders(system.FrontPort(), target,
                             {{kDeadlineHeader, "10000"}})
                .status,
            200);
  system.Stop();
}

}  // namespace
}  // namespace hynet
