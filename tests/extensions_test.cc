// Tests for the taxonomy extensions (StagedSEDA, SingleT-NCopy) and the
// open-loop load-generation mode.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "client/bench_runner.h"
#include "client/load_gen.h"
#include "core/hybrid_server.h"
#include "servers/ncopy.h"
#include "servers/staged.h"

namespace hynet {
namespace {

TEST(StagedServerTest, CountsFourLogicalSwitchesPerRequest) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kStaged;
  config.stage_threads = 2;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 4;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.3;
  lc.targets = {{BenchTarget(128, 0), 1.0}};
  const LoadResult result = RunLoad(lc);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const ServerCounters c = server->Snapshot();
  server->Stop();

  EXPECT_EQ(result.errors, 0u);
  ASSERT_GT(c.requests_handled, 50u);
  // parse + app + write stage hops + return to reactor = 4 per request
  // (steady state; connection churn adds a handful).
  EXPECT_NEAR(static_cast<double>(c.logical_switches) /
                  static_cast<double>(c.requests_handled),
              4.0, 0.2);
}

TEST(StagedServerTest, StagePoolsAreSeparateThreads) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kStaged;
  config.stage_threads = 2;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  const std::vector<int> tids = server->ThreadIds();
  // 3 stages x 2 threads + reactor.
  EXPECT_EQ(tids.size(), 7u);
  EXPECT_EQ(std::set<int>(tids.begin(), tids.end()).size(), 7u);
  server->Stop();
}

TEST(NCopyServerTest, CopiesSharePortAndSplitConnections) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThreadNCopy;
  config.ncopy = 3;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  EXPECT_EQ(server->ThreadIds().size(), 3u);

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 12;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.3;
  lc.targets = {{BenchTarget(128, 0), 1.0}};
  const LoadResult result = RunLoad(lc);
  const ServerCounters c = server->Snapshot();
  server->Stop();

  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.completed, 100u);
  EXPECT_EQ(c.connections_accepted, 12u);
  EXPECT_GE(c.requests_handled, result.completed);
}

TEST(NCopyServerTest, SingleCopyDegeneratesToSingleThread) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThreadNCopy;
  config.ncopy = 1;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  EXPECT_EQ(server->ThreadIds().size(), 1u);
  server->Stop();
}

TEST(OpenLoop, RateIsApproximatelyHonored) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 16;
  lc.warmup_sec = 0.2;
  lc.measure_sec = 1.0;
  lc.open_loop_rate = 500.0;  // far below capacity
  lc.targets = {{BenchTarget(128, 0), 1.0}};
  const LoadResult result = RunLoad(lc);
  server->Stop();

  EXPECT_EQ(result.errors, 0u);
  // Poisson(500) over 1s: expect ~500 ± 5 sigma.
  EXPECT_NEAR(static_cast<double>(result.completed), 500.0, 120.0);
  EXPECT_EQ(result.queued_arrivals, 0u);
}

TEST(OpenLoop, OverloadShowsQueueingDelay) {
  // One slow connection (handler burns ~5ms) and an arrival rate far above
  // its service rate: open-loop latency must blow past the service time.
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 1;
  lc.warmup_sec = 0.1;
  lc.measure_sec = 0.8;
  lc.open_loop_rate = 600.0;                       // offered: 600/s
  lc.targets = {{BenchTarget(128, 3000), 1.0}};    // service: ~330/s max
  const LoadResult result = RunLoad(lc);
  server->Stop();

  ASSERT_GT(result.completed, 10u);
  EXPECT_GT(result.queued_arrivals, 10u);
  // Mean latency must exceed the bare service time several-fold because
  // intended-arrival timing charges the queueing delay.
  EXPECT_GT(result.latency.Mean() / 1e6, 10.0);
}

TEST(OpenLoop, ClosedLoopFieldUntouched) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 2;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.2;
  lc.targets = {{BenchTarget(64, 0), 1.0}};
  const LoadResult result = RunLoad(lc);
  server->Stop();
  EXPECT_EQ(result.queued_arrivals, 0u);
}

TEST(PhaseProfiling, EnabledServerAccountsAllPhases) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kHybrid;
  config.profile_phases = true;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 2;
  lc.warmup_sec = 0.02;
  lc.measure_sec = 0.2;
  lc.targets = {{BenchTarget(2048, 50), 1.0}};
  const LoadResult r = RunLoad(lc);
  ASSERT_GT(r.completed, 10u);

  const auto snap = server->phase_profiler().Snap();
  server->Stop();
  for (int i = 0; i < kPhaseCount; ++i) {
    EXPECT_GT(snap.count[static_cast<size_t>(i)], 0u)
        << PhaseName(static_cast<Phase>(i));
  }
  // Handler burns ~50us; its mean must dominate parse.
  EXPECT_GT(snap.MeanNs(Phase::kHandler), snap.MeanNs(Phase::kParse));
}

TEST(PhaseProfiling, DisabledByDefaultCostsNothing) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 1;
  lc.warmup_sec = 0.02;
  lc.measure_sec = 0.05;
  lc.targets = {{BenchTarget(64, 0), 1.0}};
  RunLoad(lc);
  const auto snap = server->phase_profiler().Snap();
  server->Stop();
  for (int i = 0; i < kPhaseCount; ++i) {
    EXPECT_EQ(snap.count[static_cast<size_t>(i)], 0u);
  }
}

TEST(ArchitectureNames, NewEntriesNamed) {
  EXPECT_STREQ(ArchitectureName(ServerArchitecture::kStaged), "StagedSEDA");
  EXPECT_STREQ(ArchitectureName(ServerArchitecture::kSingleThreadNCopy),
               "SingleT-NCopy");
}

}  // namespace
}  // namespace hynet
