// Chaos harness: every architecture must evict misbehaving peers
// (slowloris drippers, stalled readers, idle squatters), absorb
// mid-response RSTs, shed or queue connections past the admission cap,
// apply outbound backpressure, answer oversize requests with 431/413,
// and drain gracefully — all while well-behaved clients keep completing
// and without leaking file descriptors (checked via /proc/self/fd).
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/socket.h>

#include <atomic>
#include <cctype>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "client/bench_runner.h"
#include "client/load_gen.h"
#include "common/clock.h"
#include "core/hybrid_server.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "servers/server.h"

namespace hynet {
namespace {

int CountOpenFds() {
  int n = 0;
  DIR* dir = ::opendir("/proc/self/fd");
  if (!dir) return -1;
  while (::readdir(dir) != nullptr) n++;
  ::closedir(dir);
  return n;
}

// Polls `pred` every 10ms until it holds or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred, int timeout_ms) {
  const TimePoint deadline = Now() + std::chrono::milliseconds(timeout_ms);
  while (Now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

// Blocking one-shot HTTP exchange over a fresh connection.
HttpResponse FetchOnce(uint16_t port, const std::string& target,
                       bool keep_alive = true) {
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(port));
  const std::string wire = BuildGetRequest(target, keep_alive);
  size_t off = 0;
  while (off < wire.size()) {
    const IoResult r = WriteFd(sock.fd(), wire.data() + off,
                               wire.size() - off);
    if (r.Fatal()) throw std::runtime_error("write failed");
    off += static_cast<size_t>(r.n);
  }
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  while (true) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) return parser.response();
    if (st == ParseStatus::kError) throw std::runtime_error("parse error");
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    if (r.n <= 0) throw std::runtime_error("connection lost");
    in.Append(buf, static_cast<size_t>(r.n));
  }
}

// Sends raw bytes, then reads one response (if any) to EOF. Returns the
// parsed status, or 0 when the server closed without responding.
int SendRawExpectStatus(uint16_t port, const std::string& wire) {
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(port));
  size_t off = 0;
  while (off < wire.size()) {
    const IoResult r = WriteFd(sock.fd(), wire.data() + off,
                               wire.size() - off);
    if (r.Fatal()) break;
    off += static_cast<size_t>(r.n);
  }
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[8 * 1024];
  while (true) {
    if (parser.Parse(in) == ParseStatus::kComplete) {
      return parser.response().status;
    }
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    if (r.n <= 0) return 0;
    in.Append(buf, static_cast<size_t>(r.n));
  }
}

// A short well-behaved closed-loop run, used to prove the server still
// serves legitimate clients while chaos connections misbehave next door.
LoadResult WellBehavedLoad(uint16_t port, double seconds) {
  LoadConfig lc;
  lc.server = InetAddr::Loopback(port);
  lc.connections = 4;
  lc.warmup_sec = 0.05;
  lc.measure_sec = seconds;
  lc.targets = {{BenchTarget(128, 0), 1.0}};
  return RunLoad(lc);
}

ServerConfig BaseConfig(ServerArchitecture arch) {
  ServerConfig c;
  c.architecture = arch;
  c.worker_threads = 4;
  c.stage_threads = 2;
  return c;
}

ChaosConfig MakeChaos(uint16_t port, ChaosMode mode, int connections) {
  ChaosConfig cc;
  cc.server = InetAddr::Loopback(port);
  cc.mode = mode;
  cc.connections = connections;
  return cc;
}

class ChaosByArch : public ::testing::TestWithParam<ServerArchitecture> {};

std::string ArchParamName(
    const ::testing::TestParamInfo<ServerArchitecture>& info) {
  std::string name = ArchitectureName(info.param);
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Archs, ChaosByArch,
    ::testing::Values(ServerArchitecture::kThreadPerConn,
                      ServerArchitecture::kReactorPool,
                      ServerArchitecture::kReactorPoolFix,
                      ServerArchitecture::kSingleThread,
                      ServerArchitecture::kMultiLoop,
                      ServerArchitecture::kHybrid,
                      ServerArchitecture::kStaged,
                      ServerArchitecture::kSingleThreadNCopy),
    ArchParamName);

TEST_P(ChaosByArch, SlowlorisFloodEvictedWhileServing) {
  const int fds_before = CountOpenFds();
  {
    ServerConfig config = BaseConfig(GetParam());
    config.header_timeout_ms = 150;
    auto server = CreateServer(config, MakeBenchHandler());
    server->Start();

    constexpr int kAbusers = 64;
    ChaosClient chaos(
        MakeChaos(server->Port(), ChaosMode::kSlowloris, kAbusers));
    chaos.Start();
    ASSERT_EQ(chaos.Snapshot().connected, static_cast<uint64_t>(kAbusers));

    // Legitimate traffic must keep completing while the flood drips.
    const LoadResult r = WellBehavedLoad(server->Port(), 0.4);
    EXPECT_EQ(r.errors, 0u);
    EXPECT_GT(r.completed, 0u);

    // Every dripper gets evicted on the header deadline...
    EXPECT_TRUE(WaitUntil(
        [&] { return server->Snapshot().header_evictions >= kAbusers; },
        20000))
        << "header_evictions=" << server->Snapshot().header_evictions;
    // ...and sees the close from its side of the socket.
    EXPECT_TRUE(WaitUntil(
        [&] { return chaos.Snapshot().evicted >= kAbusers; }, 5000))
        << "client-side evicted=" << chaos.Snapshot().evicted;

    EXPECT_EQ(FetchOnce(server->Port(), BenchTarget(64, 0)).status, 200);
    chaos.Stop();
    server->Stop();
  }
  EXPECT_TRUE(WaitUntil([&] { return CountOpenFds() <= fds_before; }, 2000))
      << "fd leak: before=" << fds_before << " after=" << CountOpenFds();
}

TEST_P(ChaosByArch, StalledReadersEvictedWhileServing) {
  ServerConfig config = BaseConfig(GetParam());
  config.write_stall_timeout_ms = 100;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  constexpr int kAbusers = 64;
  ChaosClient chaos(
      MakeChaos(server->Port(), ChaosMode::kStalledReader, kAbusers));
  chaos.Start();

  // Stall evictions serialize on the spin-writing architectures (one
  // 100ms give-up at a time), so allow a generous wall-clock budget.
  EXPECT_TRUE(WaitUntil(
      [&] { return server->Snapshot().write_stall_evictions >= kAbusers; },
      60000))
      << "write_stall_evictions="
      << server->Snapshot().write_stall_evictions;

  const LoadResult r = WellBehavedLoad(server->Port(), 0.4);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.completed, 0u);
  chaos.Stop();
  server->Stop();
}

TEST_P(ChaosByArch, MidResponseRstAbsorbed) {
  auto server = CreateServer(BaseConfig(GetParam()), MakeBenchHandler());
  server->Start();

  constexpr int kAbusers = 16;
  ChaosClient chaos(
      MakeChaos(server->Port(), ChaosMode::kMidResponseRst, kAbusers));
  chaos.Start();

  EXPECT_TRUE(WaitUntil(
      [&] { return chaos.Snapshot().rst_sent >= kAbusers; }, 20000))
      << "rst_sent=" << chaos.Snapshot().rst_sent;
  // The server must notice the resets and reclaim every connection.
  EXPECT_TRUE(WaitUntil(
      [&] {
        const ServerCounters c = server->Snapshot();
        return c.connections_closed >= kAbusers;
      },
      10000));
  EXPECT_EQ(FetchOnce(server->Port(), BenchTarget(64, 0)).status, 200);
  chaos.Stop();
  server->Stop();
}

TEST_P(ChaosByArch, IdleSquattersEvicted) {
  ServerConfig config = BaseConfig(GetParam());
  config.idle_timeout_ms = 120;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  constexpr int kSquatters = 16;
  ChaosClient chaos(MakeChaos(server->Port(), ChaosMode::kIdle, kSquatters));
  chaos.Start();

  EXPECT_TRUE(WaitUntil(
      [&] { return server->Snapshot().idle_evictions >= kSquatters; },
      15000))
      << "idle_evictions=" << server->Snapshot().idle_evictions;
  EXPECT_EQ(FetchOnce(server->Port(), BenchTarget(64, 0)).status, 200);
  chaos.Stop();
  server->Stop();
}

TEST_P(ChaosByArch, GracefulDrainFinishesInFlightWithZeroForced) {
  const int fds_before = CountOpenFds();
  {
    auto server = CreateServer(BaseConfig(GetParam()), MakeBenchHandler());
    server->Start();
    const uint16_t port = server->Port();

    // Three idle keep-alive connections (a completed exchange each)...
    std::vector<Socket> idle;
    for (int i = 0; i < 3; ++i) {
      idle.push_back(Socket::CreateTcp(false));
      idle.back().Connect(InetAddr::Loopback(port));
      const std::string wire = BuildGetRequest(BenchTarget(64, 0));
      ASSERT_GT(WriteFd(idle.back().fd(), wire.data(), wire.size()).n, 0);
      HttpResponseParser parser;
      ByteBuffer in;
      char buf[8 * 1024];
      while (parser.Parse(in) != ParseStatus::kComplete) {
        const IoResult r = ReadFd(idle.back().fd(), buf, sizeof(buf));
        ASSERT_GT(r.n, 0);
        in.Append(buf, static_cast<size_t>(r.n));
      }
    }

    // ...plus one request still in flight (a 100ms handler burn) when the
    // drain begins.
    std::atomic<int> inflight_status{-1};
    std::atomic<bool> inflight_keep_alive{true};
    std::thread inflight([&] {
      try {
        const HttpResponse resp = FetchOnce(port, BenchTarget(256, 100000));
        inflight_status = resp.status;
        inflight_keep_alive = resp.keep_alive;
      } catch (...) {
        inflight_status = 0;
      }
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(30));

    const DrainResult result =
        server->Shutdown(std::chrono::milliseconds(3000));
    inflight.join();

    // The in-flight request completed, and its response announced the
    // close; nothing had to be force-closed.
    EXPECT_EQ(inflight_status.load(), 200);
    EXPECT_FALSE(inflight_keep_alive.load());
    EXPECT_EQ(result.forced, 0u);
    EXPECT_GE(result.drained, 4u);  // 3 idle + 1 in-flight

    // The idle connections were closed server-side: reads yield EOF/RST.
    for (Socket& sock : idle) {
      char buf[64];
      EXPECT_LE(ReadFd(sock.fd(), buf, sizeof(buf)).n, 0);
    }
  }
  EXPECT_TRUE(WaitUntil([&] { return CountOpenFds() <= fds_before; }, 2000))
      << "fd leak: before=" << fds_before << " after=" << CountOpenFds();
}

TEST(AdmissionControl, ShedsWith503AtTheCapThenRecovers) {
  for (ServerArchitecture arch :
       {ServerArchitecture::kThreadPerConn, ServerArchitecture::kSingleThread,
        ServerArchitecture::kMultiLoop, ServerArchitecture::kStaged}) {
    ServerConfig config = BaseConfig(arch);
    config.max_connections = 4;
    config.shed_with_503 = true;
    auto server = CreateServer(config, MakeBenchHandler());
    server->Start();

    ChaosClient squatters(MakeChaos(server->Port(), ChaosMode::kIdle, 4));
    squatters.Start();
    ASSERT_TRUE(WaitUntil(
        [&] { return server->Snapshot().connections_accepted >= 4; }, 5000))
        << ArchitectureName(arch);

    // The fifth connection is shed with a 503 and closed.
    EXPECT_EQ(FetchOnce(server->Port(), BenchTarget(64, 0)).status, 503)
        << ArchitectureName(arch);
    EXPECT_GE(server->Snapshot().shed_connections, 1u)
        << ArchitectureName(arch);

    // Freeing the squatters' slots restores normal service.
    squatters.Stop();
    ASSERT_TRUE(WaitUntil(
        [&] { return server->Snapshot().connections_closed >= 4; }, 5000))
        << ArchitectureName(arch);
    EXPECT_EQ(FetchOnce(server->Port(), BenchTarget(64, 0)).status, 200)
        << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(AdmissionControl, AcceptPausesWithoutSheddingThenResumes) {
  for (ServerArchitecture arch : {ServerArchitecture::kThreadPerConn,
                                  ServerArchitecture::kSingleThread}) {
    ServerConfig config = BaseConfig(arch);
    config.max_connections = 2;
    config.shed_with_503 = false;
    auto server = CreateServer(config, MakeBenchHandler());
    server->Start();

    ChaosClient squatters(MakeChaos(server->Port(), ChaosMode::kIdle, 2));
    squatters.Start();
    ASSERT_TRUE(WaitUntil(
        [&] { return server->Snapshot().connections_accepted >= 2; }, 5000))
        << ArchitectureName(arch);

    // A third client connects (the backlog takes it) and sends a request;
    // it is NOT shed, just parked until a slot frees up.
    Socket waiting = Socket::CreateTcp(false);
    waiting.Connect(InetAddr::Loopback(server->Port()));
    const std::string wire = BuildGetRequest(BenchTarget(64, 0));
    ASSERT_GT(WriteFd(waiting.fd(), wire.data(), wire.size()).n, 0);
    ASSERT_TRUE(WaitUntil(
        [&] { return server->Snapshot().accept_pauses >= 1; }, 5000))
        << ArchitectureName(arch);
    EXPECT_EQ(server->Snapshot().shed_connections, 0u)
        << ArchitectureName(arch);

    // Closing the squatters frees slots; the parked client gets served.
    squatters.Stop();
    HttpResponseParser parser;
    ByteBuffer in;
    char buf[8 * 1024];
    while (parser.Parse(in) != ParseStatus::kComplete) {
      const IoResult r = ReadFd(waiting.fd(), buf, sizeof(buf));
      ASSERT_GT(r.n, 0) << ArchitectureName(arch);
      in.Append(buf, static_cast<size_t>(r.n));
    }
    EXPECT_EQ(parser.response().status, 200) << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(Backpressure, OutboundWatermarksPauseAndResumeReads) {
  ServerConfig config = BaseConfig(ServerArchitecture::kMultiLoop);
  config.outbound_high_water_bytes = 8 * 1024;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  // A deliberately slow reader forces the 1MB response through the
  // OutboundBuffer: the high-water mark must pause reads, the drain past
  // the low-water mark must resume them, and the response still arrives
  // intact.
  Socket sock = Socket::CreateTcp(false);
  sock.SetRecvBufferSize(4 * 1024);
  sock.Connect(InetAddr::Loopback(server->Port()));
  constexpr size_t kBody = 1024 * 1024;
  const std::string wire = BuildGetRequest(BenchTarget(kBody, 0));
  ASSERT_GT(WriteFd(sock.fd(), wire.data(), wire.size()).n, 0);

  HttpResponseParser parser;
  ByteBuffer in;
  char buf[2048];
  while (parser.Parse(in) != ParseStatus::kComplete) {
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    ASSERT_GT(r.n, 0);
    in.Append(buf, static_cast<size_t>(r.n));
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_EQ(parser.response().body.size(), kBody);

  const ServerCounters c = server->Snapshot();
  server->Stop();
  EXPECT_GE(c.backpressure_pauses, 1u);
  EXPECT_GE(c.backpressure_resumes, 1u);
}

TEST(OversizeRequests, HeadOverLimitAnswered431) {
  for (ServerArchitecture arch :
       {ServerArchitecture::kThreadPerConn, ServerArchitecture::kSingleThread,
        ServerArchitecture::kReactorPool, ServerArchitecture::kStaged}) {
    ServerConfig config = BaseConfig(arch);
    config.max_request_head_bytes = 2 * 1024;
    auto server = CreateServer(config, MakeBenchHandler());
    server->Start();

    // A 4KB head (over the 2KB cap) sent in full, then silence: the server
    // reads it all, rejects with 431, and closes cleanly (FIN, not RST).
    std::string wire = "GET / HTTP/1.1\r\nHost: chaos\r\nX-Pad: ";
    wire += std::string(4 * 1024, 'p');
    wire += "\r\n\r\n";
    EXPECT_EQ(SendRawExpectStatus(server->Port(), wire), 431)
        << ArchitectureName(arch);
    EXPECT_GE(server->Snapshot().oversize_requests, 1u)
        << ArchitectureName(arch);

    EXPECT_EQ(FetchOnce(server->Port(), BenchTarget(64, 0)).status, 200)
        << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(RetryStorm, BudgetBoundsRetriesAgainstAnAlwaysSheddingServer) {
  // The nightmare retry scenario: the server sheds every single request,
  // so naive retries would multiply offered load by max_attempts exactly
  // when capacity is gone. The token bucket must cap the amplification:
  // with zero successes the whole run earns zero tokens, so total retries
  // stay within the initial allowance no matter how long the storm lasts.
  ServerConfig config = BaseConfig(ServerArchitecture::kSingleThread);
  auto server = CreateServer(
      config, [](const HttpRequest&, HttpResponse& resp) {
        resp.status = 503;
        resp.reason = "Service Unavailable";
        resp.body = "shed\n";
      });
  server->Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 8;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.5;
  lc.targets = {{BenchTarget(64, 0), 1.0}};
  lc.retries_enabled = true;
  const LoadResult r = RunLoad(lc);
  server->Stop();

  // Every final outcome is a shed; plenty of requests wanted to retry.
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.shed_503, 0u);
  EXPECT_EQ(r.ok, 0u);

  // The storm drained the bucket (exhaustion observed) and total retries
  // obey the whole-run invariant: initial_tokens + ratio * successes.
  EXPECT_GT(r.retries_issued, 0u);
  EXPECT_GT(r.retry_budget_exhausted, 0u);
  EXPECT_LE(static_cast<double>(r.retries_issued),
            lc.retry.initial_tokens +
                lc.retry.budget_ratio *
                    static_cast<double>(r.retry_successes) +
                1e-9);
}

TEST(OversizeRequests, BodyOverLimitAnswered413) {
  for (ServerArchitecture arch :
       {ServerArchitecture::kThreadPerConn, ServerArchitecture::kSingleThread,
        ServerArchitecture::kReactorPool, ServerArchitecture::kStaged}) {
    ServerConfig config = BaseConfig(arch);
    config.max_request_body_bytes = 1024;
    auto server = CreateServer(config, MakeBenchHandler());
    server->Start();

    // Content-Length over the cap is rejected from the header alone — no
    // body bytes need to arrive (or be buffered) first.
    const std::string wire =
        "POST /upload HTTP/1.1\r\nHost: chaos\r\n"
        "Content-Length: 4096\r\n\r\n";
    EXPECT_EQ(SendRawExpectStatus(server->Port(), wire), 413)
        << ArchitectureName(arch);
    EXPECT_GE(server->Snapshot().oversize_requests, 1u)
        << ArchitectureName(arch);

    EXPECT_EQ(FetchOnce(server->Port(), BenchTarget(64, 0)).status, 200)
        << ArchitectureName(arch);
    server->Stop();
  }
}

}  // namespace
}  // namespace hynet
