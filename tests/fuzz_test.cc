// Randomized (seeded, reproducible) property tests: the HTTP parsers under
// adversarial fragmentation and garbage, ByteBuffer under random op
// sequences, and the outbound buffer against a randomly-draining peer.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "runtime/outbound_buffer.h"

namespace hynet {
namespace {

// Any valid request stream, split at random points, must parse into the
// same sequence of requests.
class ParserFragmentationFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFragmentationFuzz, RandomSplitsPreserveSemantics) {
  Rng rng(GetParam());

  // Build a random pipelined request stream.
  std::string wire;
  std::vector<std::pair<std::string, std::string>> expected;  // path, body
  const int n = 1 + static_cast<int>(rng.NextBounded(8));
  for (int i = 0; i < n; ++i) {
    const std::string path = "/r" + std::to_string(rng.NextBounded(1000));
    std::string body;
    if (rng.NextBounded(2)) {
      body.assign(rng.NextBounded(5000), 'b');
    }
    HttpRequest req;
    req.method = body.empty() ? "GET" : "POST";
    req.target = path;
    req.body = body;
    ByteBuffer out;
    SerializeRequest(req, out);
    wire += out.ToString();
    expected.emplace_back(path, body);
  }

  // Feed it in random fragments.
  HttpRequestParser parser;
  ByteBuffer in;
  size_t off = 0;
  std::vector<std::pair<std::string, std::string>> parsed;
  while (off < wire.size() || in.ReadableBytes() > 0) {
    if (off < wire.size()) {
      const size_t chunk =
          1 + rng.NextBounded(std::min<uint64_t>(wire.size() - off, 1400));
      in.Append(wire.data() + off, chunk);
      off += chunk;
    }
    while (true) {
      const ParseStatus st = parser.Parse(in);
      if (st == ParseStatus::kNeedMore) break;
      ASSERT_EQ(st, ParseStatus::kComplete);
      parsed.emplace_back(parser.request().path, parser.request().body);
    }
    if (off >= wire.size() && in.ReadableBytes() == 0) break;
    ASSERT_LT(parsed.size(), 100u) << "parser failed to make progress";
  }
  EXPECT_EQ(parsed, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFragmentationFuzz,
                         ::testing::Range<uint64_t>(1, 33));

// Random garbage must never be accepted as a complete request, and the
// parser must fail (or keep waiting) without crashing.
class ParserGarbageFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserGarbageFuzz, GarbageNeverParsesAsComplete) {
  Rng rng(GetParam());
  ByteBuffer in;
  std::string garbage;
  for (int i = 0; i < 512; ++i) {
    garbage.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  // Guarantee it is not accidentally a valid request line.
  garbage[0] = '\0';
  in.Append(garbage);
  in.Append("\r\n\r\n");
  HttpRequestParser parser;
  const ParseStatus st = parser.Parse(in);
  EXPECT_NE(st, ParseStatus::kComplete);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserGarbageFuzz,
                         ::testing::Range<uint64_t>(100, 116));

// ByteBuffer invariant check under random append/consume/compact sequences:
// the readable view always equals the reference deque of bytes.
class ByteBufferFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ByteBufferFuzz, MatchesReferenceModel) {
  Rng rng(GetParam());
  ByteBuffer buf(64);
  std::string model;
  char fill = 'a';

  for (int step = 0; step < 2000; ++step) {
    switch (rng.NextBounded(4)) {
      case 0: {  // append
        const size_t len = rng.NextBounded(300);
        const std::string data(len, fill);
        fill = fill == 'z' ? 'a' : static_cast<char>(fill + 1);
        buf.Append(data);
        model += data;
        break;
      }
      case 1: {  // consume
        const size_t len = std::min<size_t>(rng.NextBounded(200),
                                            buf.ReadableBytes());
        buf.Consume(len);
        model.erase(0, len);
        break;
      }
      case 2:  // compact
        buf.Compact();
        break;
      case 3: {  // external write via EnsureWritable/Produced
        const size_t len = rng.NextBounded(100);
        buf.EnsureWritable(len);
        std::memset(buf.WritePtr(), 'X', len);
        buf.Produced(len);
        model.append(len, 'X');
        break;
      }
    }
    ASSERT_EQ(buf.ReadableBytes(), model.size()) << "step " << step;
    ASSERT_EQ(buf.View(), model) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ByteBufferFuzz,
                         ::testing::Values(7, 21, 99, 1234, 98765));

// The outbound buffer must deliver every byte exactly once, in order,
// regardless of the peer's drain pattern or the spin cap.
class OutboundFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OutboundFuzz, RandomDrainPatternsPreserveByteStream) {
  Rng rng(GetParam());
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  ScopedFd writer(fds[0]), reader(fds[1]);
  SetFdNonBlocking(writer.get(), true);
  SetFdNonBlocking(reader.get(), true);
  const int small = 8 * 1024;
  ::setsockopt(writer.get(), SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(reader.get(), SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));

  OutboundBuffer buf(1 + static_cast<int>(rng.NextBounded(20)));
  WriteStats stats;

  std::string sent_model;
  char tag = 'A';
  const int messages = 3 + static_cast<int>(rng.NextBounded(10));
  for (int i = 0; i < messages; ++i) {
    std::string msg(1 + rng.NextBounded(60000), tag);
    tag = tag == 'Z' ? 'A' : static_cast<char>(tag + 1);
    sent_model += msg;
    buf.Add(std::move(msg));
  }

  std::string received;
  char rbuf[16 * 1024];
  int guard = 0;
  while ((!buf.Empty() || received.size() < sent_model.size()) &&
         guard++ < 100000) {
    const FlushResult fr = buf.Flush(writer.get(), stats);
    ASSERT_NE(fr, FlushResult::kError);
    // Randomly drain between 0 and a few chunks.
    const int drains = static_cast<int>(rng.NextBounded(4));
    for (int d = 0; d < drains; ++d) {
      const IoResult r = ReadFd(reader.get(), rbuf, sizeof(rbuf));
      if (r.n <= 0) break;
      received.append(rbuf, static_cast<size_t>(r.n));
    }
  }
  // Final drain.
  while (true) {
    const IoResult r = ReadFd(reader.get(), rbuf, sizeof(rbuf));
    if (r.n <= 0) break;
    received.append(rbuf, static_cast<size_t>(r.n));
  }

  EXPECT_EQ(received, sent_model);
  EXPECT_EQ(stats.responses.load(), static_cast<uint64_t>(messages));
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutboundFuzz,
                         ::testing::Range<uint64_t>(1, 17));

}  // namespace
}  // namespace hynet
