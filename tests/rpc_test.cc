// Tests for the RPC protocol plane: frame codec edge cases (truncation,
// fragmentation, oversize, bad magic, fuzzed splits), the completion-based
// service layer, config validation for the new protocol fields, and
// end-to-end behavior of RpcServer — multiplexed pipelining, per-method
// routing, out-of-order completions, and unknown-method survival.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "app/kv_service.h"
#include "app/rpc_server.h"
#include "client/rpc_load_gen.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "net/socket.h"
#include "proto/rpc_codec.h"

namespace hynet {
namespace {

std::string RequestFrame(uint64_t id, uint16_t method,
                         std::string_view payload, uint8_t flags = 0) {
  return EncodeRpcRequest(id, method, payload, flags);
}

// ---- Frame parser ----

TEST(RpcFrameParserTest, RoundTripsOneFrame) {
  RpcFrameParser parser;
  ByteBuffer in;
  in.Append(RequestFrame(42, 7, "hello", kRpcFlagClose));
  ASSERT_EQ(parser.Parse(in), ParseStatus::kComplete);
  EXPECT_EQ(parser.frame().header.request_id, 42u);
  EXPECT_EQ(parser.frame().header.method_id, 7u);
  EXPECT_EQ(parser.frame().header.flags, kRpcFlagClose);
  EXPECT_EQ(parser.frame().payload, "hello");
  EXPECT_TRUE(in.Empty());
  EXPECT_FALSE(parser.InProgress());
}

TEST(RpcFrameParserTest, TruncatedHeaderNeedsMore) {
  RpcFrameParser parser;
  ByteBuffer in;
  const std::string wire = RequestFrame(1, 2, "payload");
  // Every strict prefix of the header parses to kNeedMore, never crashes,
  // never produces a frame.
  for (size_t len = 0; len < kRpcHeaderSize; ++len) {
    RpcFrameParser p;
    ByteBuffer b;
    b.Append(wire.data(), len);
    EXPECT_EQ(p.Parse(b), ParseStatus::kNeedMore) << "prefix " << len;
  }
}

TEST(RpcFrameParserTest, OneByteAtATime) {
  RpcFrameParser parser;
  ByteBuffer in;
  const std::string wire = RequestFrame(99, 3, "abcdef");
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    in.Append(&wire[i], 1);
    ASSERT_EQ(parser.Parse(in), ParseStatus::kNeedMore) << "at byte " << i;
  }
  in.Append(&wire.back(), 1);
  ASSERT_EQ(parser.Parse(in), ParseStatus::kComplete);
  EXPECT_EQ(parser.frame().header.request_id, 99u);
  EXPECT_EQ(parser.frame().payload, "abcdef");
}

TEST(RpcFrameParserTest, InterleavedFramesAcrossReadBoundaries) {
  // Two frames split at an arbitrary boundary that lands mid-header of
  // the second frame.
  const std::string a = RequestFrame(1, 1, "first");
  const std::string b = RequestFrame(2, 2, "second");
  const std::string wire = a + b;
  const size_t split = a.size() + 7;  // mid-header of frame 2

  RpcFrameParser parser;
  ByteBuffer in;
  in.Append(wire.data(), split);
  ASSERT_EQ(parser.Parse(in), ParseStatus::kComplete);
  EXPECT_EQ(parser.frame().payload, "first");
  EXPECT_EQ(parser.Parse(in), ParseStatus::kNeedMore);
  in.Append(wire.data() + split, wire.size() - split);
  ASSERT_EQ(parser.Parse(in), ParseStatus::kComplete);
  EXPECT_EQ(parser.frame().header.request_id, 2u);
  EXPECT_EQ(parser.frame().payload, "second");
}

TEST(RpcFrameParserTest, RejectsBadMagicFromFirstTwoBytes) {
  RpcFrameParser parser;
  ByteBuffer in;
  in.Append("GET / HTTP/1.1\r\n");  // HTTP on the RPC port
  EXPECT_EQ(parser.Parse(in), ParseStatus::kError);
  EXPECT_EQ(parser.error(), RpcParseError::kBadMagic);
}

TEST(RpcFrameParserTest, RejectsOversizedDeclaredLengthBeforePayload) {
  RpcFrameParser parser;
  parser.SetLimits(1024);
  ByteBuffer in;
  // Header only: declares 1 MiB payload, none of which has arrived.
  RpcFrameHeader h;
  h.request_id = 5;
  h.method_id = 1;
  h.payload_len = 1 << 20;
  in.Append(EncodeRpcHeader(h));
  EXPECT_EQ(parser.Parse(in), ParseStatus::kError);
  EXPECT_EQ(parser.error(), RpcParseError::kPayloadTooLarge);
  // The parser exposed the offending header so the server can answer
  // with the request id before closing.
  EXPECT_EQ(parser.frame().header.request_id, 5u);
}

TEST(RpcFrameParserTest, EmptyPayloadFrame) {
  RpcFrameParser parser;
  ByteBuffer in;
  in.Append(RequestFrame(11, 4, ""));
  ASSERT_EQ(parser.Parse(in), ParseStatus::kComplete);
  EXPECT_EQ(parser.frame().payload, "");
  EXPECT_EQ(parser.frame().header.payload_len, 0u);
}

TEST(RpcFrameParserTest, FuzzRandomSplits) {
  // A long pipelined stream of frames with varied payload sizes, fed to
  // the parser in random-sized chunks: every frame must come out intact
  // and in order regardless of fragmentation.
  Rng rng(2026);
  std::string wire;
  std::vector<std::pair<uint64_t, std::string>> expected;
  for (uint64_t id = 1; id <= 200; ++id) {
    std::string payload(rng.NextBounded(300), '\0');
    for (char& c : payload) {
      c = static_cast<char>('a' + rng.NextBounded(26));
    }
    expected.emplace_back(id, payload);
    wire += RequestFrame(id, static_cast<uint16_t>(id % 5), payload);
  }

  RpcFrameParser parser;
  ByteBuffer in;
  size_t fed = 0;
  size_t seen = 0;
  while (seen < expected.size()) {
    if (parser.Parse(in) == ParseStatus::kComplete) {
      ASSERT_LT(seen, expected.size());
      EXPECT_EQ(parser.frame().header.request_id, expected[seen].first);
      EXPECT_EQ(parser.frame().payload, expected[seen].second);
      ++seen;
      continue;
    }
    ASSERT_LT(fed, wire.size()) << "parser starved with frames missing";
    const size_t chunk =
        std::min(wire.size() - fed, 1 + rng.NextBounded(97));
    in.Append(wire.data() + fed, chunk);
    fed += chunk;
  }
  EXPECT_EQ(seen, expected.size());
}

TEST(RpcCodecTest, ResponseSerializationIsZeroCopy) {
  auto body = std::make_shared<const std::string>(100 * 1024, 'x');
  const Payload p = SerializeRpcResponsePayload(7, 2, RpcStatus::kOk, body,
                                                /*tail=*/"suffix");
  // The stored allocation IS the body segment — same object, no copy.
  EXPECT_EQ(p.shared_body().get(), body.get());
  EXPECT_EQ(p.head().size(), kRpcHeaderSize);
  EXPECT_EQ(p.tail(), "suffix");
  EXPECT_EQ(p.size(), kRpcHeaderSize + body->size() + 6);

  // And the header round-trips through the parser with payload_len
  // covering body + tail.
  RpcFrameParser parser;
  ByteBuffer in;
  in.Append(p.Flatten());
  ASSERT_EQ(parser.Parse(in), ParseStatus::kComplete);
  EXPECT_EQ(parser.frame().header.request_id, 7u);
  EXPECT_EQ(static_cast<RpcStatus>(parser.frame().header.status),
            RpcStatus::kOk);
  EXPECT_EQ(parser.frame().payload.size(), body->size() + 6);
}

// ---- Service layer ----

TEST(ResponseWriterTest, DroppedWriterAutoFinishesWithError) {
  RpcStatus seen = RpcStatus::kOk;
  int calls = 0;
  {
    ResponseWriter writer([&](ServiceResponse resp) {
      seen = resp.status;
      ++calls;
    });
    // Dropped without Finish().
  }
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(seen, RpcStatus::kError);
}

TEST(ResponseWriterTest, FinishIsExactlyOnce) {
  int calls = 0;
  ResponseWriter writer([&](ServiceResponse) { ++calls; });
  writer.Finish(RpcStatus::kOk, "a");
  writer.Finish(RpcStatus::kError, "b");  // ignored
  EXPECT_EQ(calls, 1);
}

TEST(ServiceRegistryTest, CopyOnWriteIsolatesServers) {
  ServiceRegistry original;
  original.Register(1, "A", [](ServiceRequest, ResponseWriter w) {
    w.Finish(RpcStatus::kOk);
  });
  ServiceRegistry handed_off = original;  // what a server keeps
  original.Register(2, "B", [](ServiceRequest, ResponseWriter w) {
    w.Finish(RpcStatus::kOk);
  });
  EXPECT_EQ(handed_off.Size(), 1u);
  EXPECT_EQ(original.Size(), 2u);
  EXPECT_EQ(handed_off.Find(2), nullptr);
  EXPECT_EQ(handed_off.Name(1), "A");
  EXPECT_EQ(handed_off.Name(9), "m:?");
}

TEST(KvServiceTest, WritePayloadRoundTrip) {
  const std::string payload = EncodeKvWritePayload("key-1", "value bytes");
  std::string_view key, value;
  ASSERT_TRUE(DecodeKvWritePayload(payload, &key, &value));
  EXPECT_EQ(key, "key-1");
  EXPECT_EQ(value, "value bytes");

  std::string_view k2, v2;
  EXPECT_FALSE(DecodeKvWritePayload("", &k2, &v2));
  EXPECT_FALSE(DecodeKvWritePayload("\xff\xff" "123", &k2, &v2));
}

// ---- Config validation ----

TEST(RpcConfigTest, ValidateRejectsBadProtocol) {
  ServerConfig config;
  config.protocol = "grpc";
  const auto errors = config.Validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors[0].find("protocol"), std::string::npos);
}

TEST(RpcConfigTest, ValidateRejectsRpcOnWrongArchitecture) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kThreadPerConn;
  config.protocol = "rpc";
  bool found = false;
  for (const auto& e : config.Validate()) {
    if (e.find("kMultiLoop or kHybrid") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RpcConfigTest, ValidateRejectsRoutesWithoutRpcProtocol) {
  ServerConfig config;
  config.rpc_routes.push_back({1, RpcRoute::kWorker});
  bool found = false;
  for (const auto& e : config.Validate()) {
    if (e.find("rpc_routes requires protocol") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RpcConfigTest, ValidateRejectsDuplicateRouteEntries) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kHybrid;
  config.protocol = "rpc";
  config.rpc_routes.push_back({3, RpcRoute::kWorker});
  config.rpc_routes.push_back({3, RpcRoute::kInline});
  bool found = false;
  for (const auto& e : config.Validate()) {
    if (e.find("duplicate entry for method_id 3") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RpcConfigTest, HandlerFactoryThrowsForRpcProtocol) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kMultiLoop;
  config.protocol = "rpc";
  try {
    CreateServer(config, [](const HttpRequest&, HttpResponse&) {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("ServiceRegistry"),
              std::string::npos);
  }
}

TEST(RpcConfigTest, ServiceFactoryRejectsEmptyRegistryAndHttpProtocol) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kHybrid;
  EXPECT_THROW(CreateServer(config, ServiceRegistry{}),
               std::invalid_argument);

  ServiceRegistry services;
  services.Register(1, "A", [](ServiceRequest, ResponseWriter w) {
    w.Finish(RpcStatus::kOk);
  });
  config.protocol = "http";
  EXPECT_THROW(CreateServer(config, services), std::invalid_argument);
}

TEST(RpcConfigTest, RouteNamesRoundTrip) {
  for (const RpcRoute r : {RpcRoute::kAuto, RpcRoute::kInline,
                           RpcRoute::kReactor, RpcRoute::kWorker}) {
    RpcRoute parsed;
    ASSERT_TRUE(ParseRpcRouteName(RpcRouteName(r), &parsed));
    EXPECT_EQ(parsed, r);
  }
  RpcRoute out;
  EXPECT_FALSE(ParseRpcRouteName("bogus", &out));
}

// ---- End-to-end ----

class RpcServerTest : public ::testing::Test {
 protected:
  std::unique_ptr<Server> StartKvServer(
      ServerArchitecture arch, std::vector<MethodRouteEntry> routes = {},
      double write_cpu_us = 0) {
    store_ = std::make_shared<KvStore>();
    store_->Preload(/*count=*/64, /*value_bytes=*/1024);
    ServerConfig config;
    config.architecture = arch;
    config.protocol = "rpc";
    config.rpc_routes = std::move(routes);
    config.event_loops = 1;
    config.worker_threads = 2;
    KvServiceOptions options;
    options.write_cpu_us = write_cpu_us;
    auto server = CreateServer(config, MakeKvService(store_, options));
    server->Start();
    return server;
  }

  // Sends raw frames on one blocking socket and returns responses in
  // completion (wire) order.
  static std::vector<RpcFrame> Exchange(uint16_t port,
                                        const std::string& wire,
                                        size_t expect) {
    Socket sock = Socket::CreateTcp(false);
    sock.Connect(InetAddr::Loopback(port));
    size_t off = 0;
    while (off < wire.size()) {
      const IoResult r = WriteFd(sock.fd(), wire.data() + off,
                                 wire.size() - off);
      if (r.Fatal()) ADD_FAILURE() << "send failed";
      if (r.n > 0) off += static_cast<size_t>(r.n);
    }
    std::vector<RpcFrame> frames;
    RpcFrameParser parser;
    ByteBuffer in;
    char buf[16 * 1024];
    while (frames.size() < expect) {
      const ParseStatus ps = parser.Parse(in);
      if (ps == ParseStatus::kComplete) {
        frames.push_back(std::move(parser.frame()));
        continue;
      }
      if (ps == ParseStatus::kError) break;
      const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
      if (r.Fatal() || r.Eof()) break;
      in.Append(buf, static_cast<size_t>(r.n));
    }
    return frames;
  }

  std::shared_ptr<KvStore> store_;
};

TEST_F(RpcServerTest, LookupReadWriteOverTheWire) {
  auto server = StartKvServer(ServerArchitecture::kHybrid);
  std::string wire;
  wire += RequestFrame(1, kKvMethodLookup, KvStore::PreloadKey(3));
  wire += RequestFrame(2, kKvMethodRead, KvStore::PreloadKey(3));
  wire += RequestFrame(3, kKvMethodWrite,
                       EncodeKvWritePayload("fresh", "new-value"));
  wire += RequestFrame(4, kKvMethodRead, "fresh");
  wire += RequestFrame(5, kKvMethodRead, "missing-key");

  const auto frames = Exchange(server->Port(), wire, 5);
  ASSERT_EQ(frames.size(), 5u);
  std::map<uint64_t, const RpcFrame*> by_id;
  for (const auto& f : frames) by_id[f.header.request_id] = &f;
  ASSERT_EQ(by_id.size(), 5u);
  EXPECT_EQ(static_cast<RpcStatus>(by_id[1]->header.status), RpcStatus::kOk);
  EXPECT_EQ(by_id[1]->payload, "1:1024");
  EXPECT_EQ(by_id[2]->payload.size(), 1024u);
  EXPECT_EQ(static_cast<RpcStatus>(by_id[3]->header.status), RpcStatus::kOk);
  EXPECT_EQ(by_id[4]->payload, "new-value");
  EXPECT_EQ(static_cast<RpcStatus>(by_id[5]->header.status),
            RpcStatus::kNotFound);

  EXPECT_EQ(store_->Get("fresh") != nullptr, true);
  const ServerCounters c = server->Snapshot();
  EXPECT_EQ(c.rpc_requests, 5u);
  EXPECT_GE(c.rpc_inflight_peak, 1u);
  server->Stop();
}

TEST_F(RpcServerTest, UnknownMethodAnswersBadMethodAndSurvives) {
  auto server = StartKvServer(ServerArchitecture::kMultiLoop);
  std::string wire;
  wire += RequestFrame(1, 999, "whatever");
  wire += RequestFrame(2, kKvMethodLookup, KvStore::PreloadKey(0));

  const auto frames = Exchange(server->Port(), wire, 2);
  ASSERT_EQ(frames.size(), 2u);
  std::map<uint64_t, RpcStatus> status;
  for (const auto& f : frames) {
    status[f.header.request_id] = static_cast<RpcStatus>(f.header.status);
  }
  EXPECT_EQ(status[1], RpcStatus::kBadMethod);
  // The connection survived the unknown method: the next request on the
  // same socket was answered normally.
  EXPECT_EQ(status[2], RpcStatus::kOk);
  server->Stop();
}

TEST_F(RpcServerTest, OversizedFrameIsRejectedWithResponse) {
  store_ = std::make_shared<KvStore>();
  ServerConfig config;
  config.architecture = ServerArchitecture::kHybrid;
  config.protocol = "rpc";
  config.event_loops = 1;
  config.max_request_body_bytes = 1024;
  auto server = CreateServer(config, MakeKvService(store_, {}));
  server->Start();

  // Header declares 1 MiB; only the header is sent.
  RpcFrameHeader h;
  h.request_id = 77;
  h.method_id = kKvMethodLookup;
  h.payload_len = 1 << 20;
  const auto frames = Exchange(server->Port(), EncodeRpcHeader(h), 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].header.request_id, 77u);
  EXPECT_EQ(static_cast<RpcStatus>(frames[0].header.status),
            RpcStatus::kBadRequest);
  EXPECT_TRUE(frames[0].header.flags & kRpcFlagClose);
  server->Stop();
}

TEST_F(RpcServerTest, HttpBytesOnRpcPortCloseTheConnection) {
  auto server = StartKvServer(ServerArchitecture::kMultiLoop);
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  const std::string junk = "GET / HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_GT(WriteFd(sock.fd(), junk.data(), junk.size()).n, 0);
  char buf[256];
  const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
  EXPECT_TRUE(r.Eof() || r.Fatal());  // dropped, no response bytes
  server->Stop();
}

TEST_F(RpcServerTest, CloseFlagClosesAfterResponse) {
  auto server = StartKvServer(ServerArchitecture::kHybrid);
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(server->Port()));
  const std::string wire =
      RequestFrame(9, kKvMethodLookup, KvStore::PreloadKey(1), kRpcFlagClose);
  ASSERT_GT(WriteFd(sock.fd(), wire.data(), wire.size()).n, 0);

  RpcFrameParser parser;
  ByteBuffer in;
  char buf[4096];
  bool got_response = false;
  bool saw_eof = false;
  while (!saw_eof) {
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    if (r.Eof() || r.Fatal()) {
      saw_eof = true;
      break;
    }
    in.Append(buf, static_cast<size_t>(r.n));
    if (parser.Parse(in) == ParseStatus::kComplete) {
      got_response = true;
      EXPECT_EQ(parser.frame().header.request_id, 9u);
      EXPECT_TRUE(parser.frame().header.flags & kRpcFlagClose);
    }
  }
  EXPECT_TRUE(got_response);
  EXPECT_TRUE(saw_eof);
  server->Stop();
}

TEST_F(RpcServerTest, WorkerRoutedSlowMethodCompletesOutOfOrder) {
  // Method routing: Write → worker pool (slowed by 20ms of CPU burn),
  // Lookup → inline. Pipelining Write then Lookup on one socket must
  // yield the Lookup response FIRST — the multiplexed out-of-order
  // completion the protocol exists for.
  auto server = StartKvServer(
      ServerArchitecture::kHybrid,
      {{kKvMethodWrite, RpcRoute::kWorker},
       {kKvMethodLookup, RpcRoute::kInline}},
      /*write_cpu_us=*/20000);

  std::string wire;
  wire += RequestFrame(1, kKvMethodWrite,
                       EncodeKvWritePayload("slow-key", "v"));
  wire += RequestFrame(2, kKvMethodLookup, KvStore::PreloadKey(0));
  const auto frames = Exchange(server->Port(), wire, 2);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].header.request_id, 2u) << "Lookup should overtake";
  EXPECT_EQ(frames[1].header.request_id, 1u);

  const ServerCounters c = server->Snapshot();
  EXPECT_GE(c.rpc_out_of_order_responses, 1u);
  EXPECT_GE(c.rpc_inflight_peak, 2u);
  server->Stop();
}

TEST_F(RpcServerTest, LateFinishFromForeignThreadIsDelivered) {
  // A handler that retains its writer and finishes from a detached thread
  // long after returning: the completion must marshal back to the loop
  // and the connection must stay open while the request is in flight
  // (HasPendingWork), even though nothing is buffered.
  ServiceRegistry services;
  std::atomic<bool> fired{false};
  services.Register(1, "Later", [&fired](ServiceRequest req,
                                         ResponseWriter writer) {
    std::thread([&fired, req = std::move(req),
                 writer = std::make_shared<ResponseWriter>(
                     std::move(writer))]() mutable {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      writer->Finish(RpcStatus::kOk, "late:" + req.payload);
      fired.store(true);
    }).detach();
  });
  ServerConfig config;
  config.architecture = ServerArchitecture::kMultiLoop;
  config.protocol = "rpc";
  config.event_loops = 1;
  auto server = CreateServer(config, std::move(services));
  server->Start();

  const auto frames =
      Exchange(server->Port(), RequestFrame(31, 1, "x"), 1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload, "late:x");
  // The response can reach the client before the detached thread gets
  // rescheduled past Finish(); wait for the flag rather than race it.
  for (int i = 0; i < 1000 && !fired.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(fired.load());
  server->Stop();
}

TEST_F(RpcServerTest, PipelinedLoadThroughGenerator) {
  // The Write burn keeps that method CPU-heavy, so kAuto routes it to the
  // worker pool and requests genuinely overlap (inflight peak below).
  auto server = StartKvServer(ServerArchitecture::kHybrid, {},
                              /*write_cpu_us=*/300);
  RpcLoadConfig load;
  load.server = InetAddr::Loopback(server->Port());
  load.connections = 2;
  load.pipeline_depth = 8;
  load.warmup_sec = 0.05;
  load.measure_sec = 0.3;
  load.key_space = 64;
  load.mix = {{kKvMethodLookup, 0.6},
              {kKvMethodRead, 0.3},
              {kKvMethodWrite, 0.1}};
  const RpcLoadResult result = RunRpcLoad(load);
  EXPECT_GT(result.completed, 100u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_GE(result.per_method.size(), 3u);

  const ServerCounters c = server->Snapshot();
  EXPECT_GE(c.rpc_requests, result.completed);
  EXPECT_GE(c.rpc_inflight_peak, 2u);
  // RPC responses ride the writev zero-copy path.
  EXPECT_GT(c.writev_calls, 0u);
  server->Stop();
}

}  // namespace
}  // namespace hynet
