// Unit tests for core/: write-spin monitor, runtime request classifier,
// and the HybridServer's path selection + self-correction.
#include <gtest/gtest.h>

#include <thread>

#include "client/bench_runner.h"
#include "core/classifier.h"
#include "core/hybrid_server.h"
#include "core/write_spin.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"

namespace hynet {
namespace {

TEST(WriteSpinMonitorTest, VerdictFollowsThresholdAndBlocking) {
  WriteSpinMonitor monitor(2);
  EXPECT_FALSE(monitor.IsHeavy({1, false, 100}));
  EXPECT_FALSE(monitor.IsHeavy({2, false, 100}));
  EXPECT_TRUE(monitor.IsHeavy({3, false, 100}));
  EXPECT_TRUE(monitor.IsHeavy({1, true, 100}));  // blocked = heavy
}

TEST(WriteSpinMonitorTest, AggregatesObservations) {
  WriteSpinMonitor monitor(2);
  monitor.Record({1, false, 100});
  monitor.Record({5, false, 100000});
  monitor.Record({1, true, 50000});
  EXPECT_EQ(monitor.observations(), 3u);
  EXPECT_EQ(monitor.heavy_observed(), 2u);
  EXPECT_NEAR(monitor.MeanWritesPerResponse(), 7.0 / 3.0, 1e-9);
}

TEST(ClassifierTest, DefaultsToLightForUnknown) {
  RequestClassifier classifier;
  EXPECT_EQ(classifier.Lookup("/never-seen"), PathCategory::kLight);
  EXPECT_EQ(classifier.Size(), 0u);
}

TEST(ClassifierTest, UpdateAndLookupRoundTrip) {
  RequestClassifier classifier;
  EXPECT_TRUE(classifier.Update("/big", PathCategory::kHeavy));
  EXPECT_EQ(classifier.Lookup("/big"), PathCategory::kHeavy);
  EXPECT_EQ(classifier.Size(), 1u);
}

TEST(ClassifierTest, RedundantUpdateIsNotAReclassification) {
  RequestClassifier classifier;
  EXPECT_TRUE(classifier.Update("/big", PathCategory::kHeavy));
  EXPECT_FALSE(classifier.Update("/big", PathCategory::kHeavy));
  EXPECT_EQ(classifier.Reclassifications(), 1u);
}

TEST(ClassifierTest, RecordingTheDefaultForFreshKeyIsFree) {
  RequestClassifier classifier;  // default light
  EXPECT_FALSE(classifier.Update("/small", PathCategory::kLight));
  EXPECT_EQ(classifier.Reclassifications(), 0u);
  // But the entry exists and can later flip.
  EXPECT_TRUE(classifier.Update("/small", PathCategory::kHeavy));
  EXPECT_TRUE(classifier.Update("/small", PathCategory::kLight));
  EXPECT_EQ(classifier.Reclassifications(), 2u);
}

TEST(ClassifierTest, HeavyDefaultVariant) {
  RequestClassifier classifier(PathCategory::kHeavy);
  EXPECT_EQ(classifier.Lookup("/anything"), PathCategory::kHeavy);
  EXPECT_TRUE(classifier.Update("/anything", PathCategory::kLight));
}

TEST(ClassifierTest, ClearResets) {
  RequestClassifier classifier;
  classifier.Update("/a", PathCategory::kHeavy);
  classifier.Clear();
  EXPECT_EQ(classifier.Size(), 0u);
  EXPECT_EQ(classifier.Lookup("/a"), PathCategory::kLight);
}

TEST(ClassifierTest, ConcurrentLookupsAndUpdatesAreSafe) {
  RequestClassifier classifier;
  std::vector<std::thread> threads;
  std::atomic<bool> stop{false};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string key = "/k" + std::to_string(i % 17);
        if (t % 2 == 0) {
          classifier.Update(key, i % 2 ? PathCategory::kHeavy
                                       : PathCategory::kLight);
        } else {
          (void)classifier.Lookup(key);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  stop = true;
  EXPECT_LE(classifier.Size(), 17u);
  EXPECT_GT(classifier.Lookups(), 0u);
}

// --- HybridServer end-to-end behaviour ---

class HybridServerTest : public ::testing::Test {
 protected:
  void StartServer(int heavy_threshold = 2) {
    ServerConfig config;
    config.architecture = ServerArchitecture::kHybrid;
    config.snd_buf_bytes = 16 * 1024;
    config.hybrid_heavy_write_threshold = heavy_threshold;
    server_ = std::make_unique<HybridServer>(config, MakeBenchHandler());
    server_->Start();
  }

  HttpResponse Fetch(const std::string& target, int rcv_buf = 0) {
    Socket sock = Socket::CreateTcp(false);
    if (rcv_buf > 0) sock.SetRecvBufferSize(rcv_buf);
    sock.Connect(InetAddr::Loopback(server_->Port()));
    const std::string wire = BuildGetRequest(target);
    size_t off = 0;
    while (off < wire.size()) {
      const IoResult r =
          WriteFd(sock.fd(), wire.data() + off, wire.size() - off);
      if (r.Fatal()) throw std::runtime_error("write");
      off += static_cast<size_t>(r.n);
    }
    HttpResponseParser parser;
    ByteBuffer in;
    char buf[16 * 1024];
    while (true) {
      const ParseStatus st = parser.Parse(in);
      if (st == ParseStatus::kComplete) return parser.response();
      if (st == ParseStatus::kError) throw std::runtime_error("parse");
      const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
      if (r.n <= 0) throw std::runtime_error("eof");
      in.Append(buf, static_cast<size_t>(r.n));
    }
  }

  std::unique_ptr<HybridServer> server_;
};

TEST_F(HybridServerTest, LightRequestsStayOnLightPath) {
  StartServer();
  for (int i = 0; i < 10; ++i) {
    const HttpResponse resp = Fetch(BenchTarget(256, 0));
    EXPECT_EQ(resp.body.size(), 256u);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const ServerCounters c = server_->Snapshot();
  EXPECT_EQ(c.light_path_responses, 10u);
  EXPECT_EQ(c.heavy_path_responses, 0u);
  server_->Stop();
}

TEST_F(HybridServerTest, HeavyTypeLearnedAfterFirstRequest) {
  StartServer();
  const std::string heavy_target = BenchTarget(200 * 1024, 0);
  // Small client window forces the write-spin on the first heavy request.
  for (int i = 0; i < 5; ++i) {
    const HttpResponse resp = Fetch(heavy_target, /*rcv_buf=*/16 * 1024);
    EXPECT_EQ(resp.body.size(), 200u * 1024);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const ServerCounters c = server_->Snapshot();
  // First request mispredicts (light attempt), the rest go straight to the
  // heavy path.
  EXPECT_GE(c.heavy_path_responses, 4u);
  EXPECT_EQ(server_->classifier().Lookup(heavy_target),
            PathCategory::kHeavy);
  EXPECT_GE(server_->classifier().Reclassifications(), 1u);
  server_->Stop();
}

TEST_F(HybridServerTest, MixedTypesRoutedIndependently) {
  StartServer();
  const std::string light = BenchTarget(128, 0);
  const std::string heavy = BenchTarget(200 * 1024, 0);
  for (int i = 0; i < 4; ++i) {
    Fetch(heavy, 16 * 1024);
    Fetch(light, 16 * 1024);
  }
  EXPECT_EQ(server_->classifier().Lookup(light), PathCategory::kLight);
  EXPECT_EQ(server_->classifier().Lookup(heavy), PathCategory::kHeavy);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const ServerCounters c = server_->Snapshot();
  EXPECT_GE(c.light_path_responses, 4u);
  EXPECT_GE(c.heavy_path_responses, 3u);
  server_->Stop();
}

TEST_F(HybridServerTest, MonitorSeesObservations) {
  StartServer();
  for (int i = 0; i < 3; ++i) Fetch(BenchTarget(100, 0));
  // Counters may trail the last readable byte by a few instructions.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(server_->monitor().observations(), 3u);
  EXPECT_EQ(server_->monitor().heavy_observed(), 0u);
  server_->Stop();
}

TEST_F(HybridServerTest, ResponsesOrderedWhenPathsMix) {
  // A heavy response queued in the outbound buffer must not be overtaken
  // by a later light response on the same connection (pipelined).
  StartServer();
  Socket sock = Socket::CreateTcp(false);
  sock.SetRecvBufferSize(16 * 1024);
  sock.Connect(InetAddr::Loopback(server_->Port()));
  const std::string heavy = BenchTarget(150 * 1024, 0);
  const std::string light = BenchTarget(64, 0);
  // Teach the classifier first.
  Fetch(heavy, 16 * 1024);

  std::string wire = BuildGetRequest(heavy) + BuildGetRequest(light);
  ASSERT_EQ(WriteFd(sock.fd(), wire.data(), wire.size()).n,
            static_cast<ssize_t>(wire.size()));

  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  std::vector<size_t> sizes;
  while (sizes.size() < 2) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) {
      sizes.push_back(parser.response().body.size());
      continue;
    }
    ASSERT_NE(st, ParseStatus::kError);
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    ASSERT_GT(r.n, 0);
    in.Append(buf, static_cast<size_t>(r.n));
  }
  EXPECT_EQ(sizes[0], 150u * 1024);  // heavy first — order preserved
  EXPECT_EQ(sizes[1], 64u);
  server_->Stop();
}

TEST_F(HybridServerTest, PushTrainGrowthFlipsTypeToHeavy) {
  StartServer();
  // Same request type; the handler's push train makes it large.
  const std::string target = "/bench?size=1024&push=12&push_kb=16";
  for (int i = 0; i < 4; ++i) {
    const HttpResponse resp = Fetch(target, /*rcv_buf=*/16 * 1024);
    EXPECT_EQ(resp.body.size(), 1024u + 12 * 16 * 1024);
    EXPECT_EQ(resp.Header("X-Push-Parts"), "12");
  }
  EXPECT_EQ(server_->classifier().Lookup(target), PathCategory::kHeavy);
  server_->Stop();
}

TEST(HybridFactory, CreateServerBuildsAllEight) {
  for (auto arch :
       {ServerArchitecture::kThreadPerConn, ServerArchitecture::kReactorPool,
        ServerArchitecture::kReactorPoolFix,
        ServerArchitecture::kSingleThread, ServerArchitecture::kMultiLoop,
        ServerArchitecture::kHybrid, ServerArchitecture::kStaged,
        ServerArchitecture::kSingleThreadNCopy}) {
    ServerConfig config;
    config.architecture = arch;
    auto server = CreateServer(config, MakeBenchHandler());
    ASSERT_NE(server, nullptr) << ArchitectureName(arch);
  }
  // The one factory is gated by ServerConfig::Validate().
  ServerConfig bad_config;
  bad_config.architecture = ServerArchitecture::kHybrid;
  bad_config.event_loops = 0;
  EXPECT_THROW(CreateServer(bad_config, MakeBenchHandler()),
               std::invalid_argument);
}

TEST(PathCategoryNames, Stable) {
  EXPECT_STREQ(PathCategoryName(PathCategory::kLight), "light");
  EXPECT_STREQ(PathCategoryName(PathCategory::kHeavy), "heavy");
}

}  // namespace
}  // namespace hynet
