// Architecture-specific behaviour tests: dispatch accounting (Table II
// semantics), write-spin counters, keep-alive/close handling, concurrent
// clients, pipelined requests, and socket-option plumbing.
#include <gtest/gtest.h>

#include <thread>

#include "client/bench_runner.h"
#include "client/load_gen.h"
#include "core/hybrid_server.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "servers/reactor_pool.h"
#include "servers/server.h"

namespace hynet {
namespace {

// Blocking one-shot HTTP exchange over a fresh connection.
HttpResponse FetchOnce(uint16_t port, const std::string& target,
                       bool keep_alive = true) {
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(port));
  const std::string wire = BuildGetRequest(target, keep_alive);
  size_t off = 0;
  while (off < wire.size()) {
    const IoResult r = WriteFd(sock.fd(), wire.data() + off,
                               wire.size() - off);
    if (r.Fatal()) throw std::runtime_error("write failed");
    off += static_cast<size_t>(r.n);
  }
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  while (true) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) return parser.response();
    if (st == ParseStatus::kError) throw std::runtime_error("parse error");
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    if (r.n <= 0) throw std::runtime_error("connection lost");
    in.Append(buf, static_cast<size_t>(r.n));
  }
}

// Sends `n` requests sequentially over one persistent connection.
void FetchMany(uint16_t port, const std::string& target, int n) {
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(port));
  const std::string wire = BuildGetRequest(target);
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  for (int i = 0; i < n; ++i) {
    size_t off = 0;
    while (off < wire.size()) {
      const IoResult r =
          WriteFd(sock.fd(), wire.data() + off, wire.size() - off);
      ASSERT_FALSE(r.Fatal());
      off += static_cast<size_t>(r.n);
    }
    while (true) {
      const ParseStatus st = parser.Parse(in);
      if (st == ParseStatus::kComplete) break;
      ASSERT_NE(st, ParseStatus::kError);
      const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
      ASSERT_GT(r.n, 0);
      in.Append(buf, static_cast<size_t>(r.n));
    }
  }
}

// Server-side counters may trail the last readable response byte by a few
// instructions on a single core; give them a moment before snapshotting.
void SettleCounters() {
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
}

ServerConfig BaseConfig(ServerArchitecture arch) {
  ServerConfig c;
  c.architecture = arch;
  c.worker_threads = 4;
  return c;
}

TEST(DispatchAccounting, ReactorPoolSplitCountsFourPerRequest) {
  auto server = CreateServer(BaseConfig(ServerArchitecture::kReactorPool),
                             MakeBenchHandler());
  server->Start();
  // One persistent connection: the paper's Table II counts steady-state
  // per-request handoffs (connection open/close adds a one-off dispatch).
  FetchMany(server->Port(), BenchTarget(64, 0), 40);
  SettleCounters();
  const ServerCounters c = server->Snapshot();
  server->Stop();
  ASSERT_GE(c.requests_handled, 40u);
  EXPECT_NEAR(static_cast<double>(c.logical_switches) /
                  static_cast<double>(c.requests_handled),
              4.0, 0.15);
}

TEST(DispatchAccounting, ReactorPoolMergedCountsTwoPerRequest) {
  auto server = CreateServer(BaseConfig(ServerArchitecture::kReactorPoolFix),
                             MakeBenchHandler());
  server->Start();
  FetchMany(server->Port(), BenchTarget(64, 0), 40);
  SettleCounters();
  const ServerCounters c = server->Snapshot();
  server->Stop();
  EXPECT_NEAR(static_cast<double>(c.logical_switches) /
                  static_cast<double>(c.requests_handled),
              2.0, 0.15);
}

TEST(DispatchAccounting, SingleThreadAndThreadPerConnCountZero) {
  for (auto arch : {ServerArchitecture::kSingleThread,
                    ServerArchitecture::kThreadPerConn,
                    ServerArchitecture::kMultiLoop}) {
    auto server = CreateServer(BaseConfig(arch), MakeBenchHandler());
    server->Start();
    for (int i = 0; i < 5; ++i) FetchOnce(server->Port(), BenchTarget(64, 0));
    const ServerCounters c = server->Snapshot();
    server->Stop();
    EXPECT_EQ(c.logical_switches, 0u) << ArchitectureName(arch);
  }
}

class WriteSpinByArch : public ::testing::TestWithParam<ServerArchitecture> {
};

TEST_P(WriteSpinByArch, SmallResponsesNeedExactlyOneWrite) {
  ServerConfig config = BaseConfig(GetParam());
  config.snd_buf_bytes = 16 * 1024;
  // write() anatomy is a readiness-path property: on the io_uring
  // completion engine responses ride SENDMSG SQEs and write_calls stays
  // zero by design. Pin the engine so the paper's semantics are measured
  // even when HYNET_IO_BACKEND routes the suite through uring.
  config.io_backend = "epoll";
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  for (int i = 0; i < 10; ++i) {
    FetchOnce(server->Port(), BenchTarget(512, 0));
  }
  SettleCounters();
  const ServerCounters c = server->Snapshot();
  server->Stop();
  ASSERT_GE(c.responses_sent, 10u);
  EXPECT_EQ(c.write_calls, c.responses_sent)
      << "a 512B response must be one write() for "
      << ArchitectureName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Archs, WriteSpinByArch,
    ::testing::Values(ServerArchitecture::kThreadPerConn,
                      ServerArchitecture::kReactorPool,
                      ServerArchitecture::kReactorPoolFix,
                      ServerArchitecture::kSingleThread,
                      ServerArchitecture::kMultiLoop,
                      ServerArchitecture::kHybrid));

TEST(WriteSpin, SingleThreadSpinsOnLargeResponseWithSlowReader) {
  ServerConfig config = BaseConfig(ServerArchitecture::kSingleThread);
  config.snd_buf_bytes = 16 * 1024;
  // The write-spin problem exists only on the readiness path (the
  // completion engine resumes short writes from CQEs instead of
  // spinning); pin the engine so the measured effect survives a
  // HYNET_IO_BACKEND=uring run.
  config.io_backend = "epoll";
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();

  // A deliberately slow reader: requests 300KB and reads in dribbles, so
  // the server's send buffer stays full and its write() calls multiply.
  Socket sock = Socket::CreateTcp(false);
  sock.SetRecvBufferSize(8 * 1024);
  sock.Connect(InetAddr::Loopback(server->Port()));
  const std::string wire = BuildGetRequest(BenchTarget(300 * 1024, 0));
  ASSERT_GT(WriteFd(sock.fd(), wire.data(), wire.size()).n, 0);

  size_t received = 0;
  char buf[2048];
  while (received < 300 * 1024) {
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    if (r.n <= 0) break;
    received += static_cast<size_t>(r.n);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const ServerCounters c = server->Snapshot();
  server->Stop();
  EXPECT_GT(c.write_calls, 5u) << "expected a write-spin (many write calls)";
  EXPECT_GT(c.zero_writes, 0u) << "expected zero-byte writes while full";
}

TEST(KeepAlive, ConnectionCloseHonoredByAllArchitectures) {
  for (auto arch :
       {ServerArchitecture::kThreadPerConn, ServerArchitecture::kReactorPool,
        ServerArchitecture::kReactorPoolFix,
        ServerArchitecture::kSingleThread, ServerArchitecture::kMultiLoop,
        ServerArchitecture::kHybrid}) {
    auto server = CreateServer(BaseConfig(arch), MakeBenchHandler());
    server->Start();

    Socket sock = Socket::CreateTcp(false);
    sock.Connect(InetAddr::Loopback(server->Port()));
    const std::string wire =
        BuildGetRequest(BenchTarget(64, 0), /*keep_alive=*/false);
    ASSERT_GT(WriteFd(sock.fd(), wire.data(), wire.size()).n, 0);

    // Read until EOF: server must close after the response.
    ByteBuffer in;
    HttpResponseParser parser;
    char buf[4096];
    bool got_response = false, got_eof = false;
    for (int i = 0; i < 1000 && !got_eof; ++i) {
      const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
      if (r.Eof()) {
        got_eof = true;
        break;
      }
      ASSERT_FALSE(r.Fatal()) << ArchitectureName(arch);
      in.Append(buf, static_cast<size_t>(r.n));
      if (!got_response && parser.Parse(in) == ParseStatus::kComplete) {
        got_response = true;
        EXPECT_FALSE(parser.response().keep_alive);
      }
    }
    EXPECT_TRUE(got_response) << ArchitectureName(arch);
    EXPECT_TRUE(got_eof) << ArchitectureName(arch)
                         << " must close after Connection: close";
    server->Stop();
  }
}

TEST(Pipelining, BackToBackRequestsAllAnswered) {
  for (auto arch :
       {ServerArchitecture::kThreadPerConn, ServerArchitecture::kReactorPool,
        ServerArchitecture::kSingleThread, ServerArchitecture::kMultiLoop,
        ServerArchitecture::kHybrid}) {
    auto server = CreateServer(BaseConfig(arch), MakeBenchHandler());
    server->Start();

    Socket sock = Socket::CreateTcp(false);
    sock.Connect(InetAddr::Loopback(server->Port()));
    std::string wire;
    constexpr int kN = 5;
    for (int i = 0; i < kN; ++i) {
      wire += BuildGetRequest(BenchTarget(100 + i, 0));
    }
    ASSERT_EQ(WriteFd(sock.fd(), wire.data(), wire.size()).n,
              static_cast<ssize_t>(wire.size()));

    ByteBuffer in;
    HttpResponseParser parser;
    char buf[16 * 1024];
    int responses = 0;
    while (responses < kN) {
      const ParseStatus st = parser.Parse(in);
      if (st == ParseStatus::kComplete) {
        EXPECT_EQ(parser.response().body.size(),
                  static_cast<size_t>(100 + responses));
        responses++;
        continue;
      }
      ASSERT_NE(st, ParseStatus::kError);
      const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
      ASSERT_GT(r.n, 0) << ArchitectureName(arch);
      in.Append(buf, static_cast<size_t>(r.n));
    }
    EXPECT_EQ(responses, kN) << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(MalformedInput, GarbageClosesConnectionWithoutCrash) {
  for (auto arch :
       {ServerArchitecture::kThreadPerConn, ServerArchitecture::kReactorPool,
        ServerArchitecture::kSingleThread, ServerArchitecture::kMultiLoop,
        ServerArchitecture::kHybrid}) {
    auto server = CreateServer(BaseConfig(arch), MakeBenchHandler());
    server->Start();

    Socket sock = Socket::CreateTcp(false);
    sock.Connect(InetAddr::Loopback(server->Port()));
    const std::string garbage = "NOT HTTP AT ALL\r\n\r\n";
    (void)!WriteFd(sock.fd(), garbage.data(), garbage.size()).n;

    char buf[256];
    // Server should close (EOF) fairly quickly rather than hang or crash.
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    EXPECT_LE(r.n, 0) << ArchitectureName(arch);

    // And it must still serve new connections afterwards.
    const HttpResponse resp = FetchOnce(server->Port(), BenchTarget(32, 0));
    EXPECT_EQ(resp.status, 200) << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(SocketOptions, SendBufferAppliedToAcceptedConnections) {
  ServerConfig config = BaseConfig(ServerArchitecture::kSingleThread);
  config.snd_buf_bytes = 32 * 1024;
  std::atomic<int> observed{0};
  // Handler can't see the socket; verify via server-side accounting: a
  // response of exactly snd_buf size should not require many writes.
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  FetchOnce(server->Port(), BenchTarget(24 * 1024, 0));
  const ServerCounters c = server->Snapshot();
  server->Stop();
  EXPECT_LE(c.write_calls, 2u);
  (void)observed;
}

TEST(HandlerContract, StatusAndHeadersPropagate) {
  ServerConfig config = BaseConfig(ServerArchitecture::kHybrid);
  auto server = CreateServer(config, [](const HttpRequest& req,
                                        HttpResponse& resp) {
    if (req.path == "/teapot") {
      resp.status = 418;
      resp.reason = "I'm a teapot";
      resp.SetHeader("X-Brew", "oolong");
    }
  });
  server->Start();
  const HttpResponse resp = FetchOnce(server->Port(), "/teapot");
  server->Stop();
  EXPECT_EQ(resp.status, 418);
  EXPECT_EQ(resp.Header("x-brew"), "oolong");
}

TEST(ConcurrentClients, ManyThreadsAgainstEachArchitecture) {
  for (auto arch :
       {ServerArchitecture::kReactorPool, ServerArchitecture::kMultiLoop,
        ServerArchitecture::kHybrid}) {
    auto server = CreateServer(BaseConfig(arch), MakeBenchHandler());
    server->Start();
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 20; ++i) {
          try {
            if (FetchOnce(server->Port(), BenchTarget(256, 0)).status !=
                200) {
              failures++;
            }
          } catch (...) {
            failures++;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0) << ArchitectureName(arch);
    server->Stop();
  }
}

TEST(MultiLoopConfig, MultipleEventLoopsServe) {
  ServerConfig config = BaseConfig(ServerArchitecture::kMultiLoop);
  config.event_loops = 3;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  EXPECT_GE(server->ThreadIds().size(), 4u);  // boss + 3 loops
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(FetchOnce(server->Port(), BenchTarget(64, 0)).status, 200);
  }
  const ServerCounters c = server->Snapshot();
  EXPECT_EQ(c.connections_accepted, 9u);  // round-robin across loops
  server->Stop();
}

// ---------------------------------------------------------------------------
// Idle-cold reclamation: a connection idle past cold_idle_ms hands its
// pooled read buffer back (accounted by the conn table), then transparently
// revives on the next request.

int64_t ScrapeGauge(Server& server, const std::string& name) {
  const MetricsSnapshot snap = server.metrics().Scrape();
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return v;
  }
  return 0;
}

TEST(ColdReclaim, IdleConnReleasesPooledBufferAndRevives) {
  for (const ServerArchitecture arch :
       {ServerArchitecture::kSingleThread, ServerArchitecture::kMultiLoop}) {
    SCOPED_TRACE(ArchitectureName(arch));
    ServerConfig config;
    config.architecture = arch;
    config.cold_idle_ms = 50;
    auto server = CreateServer(config, MakeBenchHandler());
    server->Start();

    Socket sock = Socket::CreateTcp(false);
    sock.Connect(InetAddr::Loopback(server->Port()));
    const std::string wire = BuildGetRequest(BenchTarget(128, 0));
    HttpResponseParser parser;
    ByteBuffer in;
    char buf[4096];
    const auto exchange = [&] {
      size_t off = 0;
      while (off < wire.size()) {
        const IoResult w =
            WriteFd(sock.fd(), wire.data() + off, wire.size() - off);
        ASSERT_FALSE(w.Fatal());
        off += static_cast<size_t>(w.n);
      }
      while (parser.Parse(in) == ParseStatus::kNeedMore) {
        const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
        ASSERT_GT(r.n, 0);
        in.Append(buf, static_cast<size_t>(r.n));
      }
      ASSERT_EQ(parser.response().status, 200);
      parser.Reset();
    };

    exchange();
    const int64_t warm_resident = ScrapeGauge(*server, "conn_bytes_resident");
    EXPECT_GT(warm_resident, 0);

    // Sit idle well past cold_idle_ms; sweeps run every ~cold_idle/4.
    const auto cold_deadline = Now() + std::chrono::seconds(5);
    while (ScrapeGauge(*server, "conn_cold") == 0 && Now() < cold_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(ScrapeGauge(*server, "conn_cold"), 1);
    // The read buffer went back to the pool and left the accounting.
    EXPECT_LT(ScrapeGauge(*server, "conn_bytes_resident"), warm_resident);
    EXPECT_GT(ScrapeGauge(*server, "buffer_pool_free_bytes"), 0);
    MetricsSnapshot snap = server->metrics().Scrape();
    EXPECT_GE(snap.CounterValue("server_cold_reclaims"), 1u);
    EXPECT_EQ(snap.CounterValue("server_cold_revivals"), 0u);

    // The cold connection still serves: next request re-acquires a buffer.
    // The response write happens before the loop thread re-accounts the
    // connection, so on a busy host the gauge can trail the response by a
    // scheduling quantum — poll for it.
    exchange();
    snap = server->metrics().Scrape();
    EXPECT_GE(snap.CounterValue("server_cold_revivals"), 1u);
    const auto warm_deadline = Now() + std::chrono::seconds(2);
    while (ScrapeGauge(*server, "conn_cold") != 0 && Now() < warm_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EXPECT_EQ(ScrapeGauge(*server, "conn_cold"), 0);

    server->Stop();
  }
}

}  // namespace
}  // namespace hynet
