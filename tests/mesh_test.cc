// Mesh-plane tests (ISSUE 10): the sharded response cache (singleflight,
// TTL, LRU byte budget, zero-copy shared bodies), fan-out/fan-in
// partial-failure policies, the RpcChannel client (deadline expiry,
// reconnect after RST, per-method idempotent retries, wire deadline
// propagation), and the 3-tier rubbos system on the rpc transport.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "app/service.h"
#include "common/clock.h"
#include "common/deadline.h"
#include "mesh/fanout.h"
#include "mesh/response_cache.h"
#include "mesh/rpc_channel.h"
#include "net/socket.h"
#include "proto/http_codec.h"
#include "proto/http_parser.h"
#include "rubbos/app_logic.h"
#include "rubbos/app_rpc.h"
#include "rubbos/system.h"
#include "servers/server.h"

namespace hynet {
namespace {

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::shared_ptr<const std::string> Body(const std::string& s) {
  return std::make_shared<const std::string>(s);
}

// ---- ResponseCache ----

TEST(ResponseCacheTest, HitServesSharedBodyZeroCopy) {
  ResponseCacheConfig config;
  config.ttl_ms = 0;  // no expiry
  ResponseCache cache(config);

  CachedResponse hit;
  ASSERT_EQ(cache.Lookup(1, "k", &hit, nullptr),
            ResponseCache::Outcome::kMissLead);
  auto body = Body("rendered-once");
  const long base_count = body.use_count();
  cache.Fill(1, "k", {RpcStatus::kOk, body}, /*store=*/true);
  // The cache holds a reference, not a copy.
  EXPECT_EQ(body.use_count(), base_count + 1);

  CachedResponse a, b;
  ASSERT_EQ(cache.Lookup(1, "k", &a, nullptr), ResponseCache::Outcome::kHit);
  ASSERT_EQ(cache.Lookup(1, "k", &b, nullptr), ResponseCache::Outcome::kHit);
  // Zero-copy proof: both hits reference the ORIGINAL allocation.
  EXPECT_EQ(a.body.get(), body.get());
  EXPECT_EQ(b.body.get(), body.get());
  EXPECT_EQ(body.use_count(), base_count + 3);
  EXPECT_EQ(cache.Hits(), 2u);
  EXPECT_EQ(cache.Misses(), 1u);
}

TEST(ResponseCacheTest, MethodIdIsPartOfTheKey) {
  ResponseCache cache({});
  CachedResponse hit;
  ASSERT_EQ(cache.Lookup(1, "k", &hit, nullptr),
            ResponseCache::Outcome::kMissLead);
  cache.Fill(1, "k", {RpcStatus::kOk, Body("m1")}, true);
  // Same key under a different method misses.
  EXPECT_EQ(cache.Lookup(2, "k", &hit, nullptr),
            ResponseCache::Outcome::kMissLead);
  cache.Fill(2, "k", {RpcStatus::kOk, Body("m2")}, true);
  ASSERT_EQ(cache.Lookup(1, "k", &hit, nullptr),
            ResponseCache::Outcome::kHit);
  EXPECT_EQ(*hit.body, "m1");
}

TEST(ResponseCacheTest, SingleflightCoalescesConcurrentMisses) {
  ResponseCache cache({});
  CachedResponse lead_hit;
  ASSERT_EQ(cache.Lookup(1, "hot", &lead_hit, nullptr),
            ResponseCache::Outcome::kMissLead);

  std::atomic<int> filled{0};
  std::shared_ptr<const std::string> seen_a, seen_b;
  ASSERT_EQ(cache.Lookup(1, "hot", nullptr,
                         [&](CachedResponse r) {
                           seen_a = r.body;
                           filled.fetch_add(1);
                         }),
            ResponseCache::Outcome::kMissJoined);
  ASSERT_EQ(cache.Lookup(1, "hot", nullptr,
                         [&](CachedResponse r) {
                           seen_b = r.body;
                           filled.fetch_add(1);
                         }),
            ResponseCache::Outcome::kMissJoined);
  EXPECT_EQ(cache.SingleflightWaits(), 2u);
  EXPECT_EQ(filled.load(), 0);

  auto body = Body("one render, three consumers");
  cache.Fill(1, "hot", {RpcStatus::kOk, body}, true);
  EXPECT_EQ(filled.load(), 2);
  // All waiters got the one shared allocation.
  EXPECT_EQ(seen_a.get(), body.get());
  EXPECT_EQ(seen_b.get(), body.get());
  // Misses counted once per caller, but only one render happened.
  EXPECT_EQ(cache.Misses(), 3u);
}

TEST(ResponseCacheTest, FailedFillPublishesWithoutStoring) {
  ResponseCache cache({});
  CachedResponse hit;
  ASSERT_EQ(cache.Lookup(1, "k", &hit, nullptr),
            ResponseCache::Outcome::kMissLead);
  RpcStatus joined_status = RpcStatus::kOk;
  ASSERT_EQ(cache.Lookup(1, "k", nullptr,
                         [&](CachedResponse r) { joined_status = r.status; }),
            ResponseCache::Outcome::kMissJoined);
  cache.Fill(1, "k", {RpcStatus::kError, nullptr}, /*store=*/false);
  EXPECT_EQ(joined_status, RpcStatus::kError);
  EXPECT_EQ(cache.EntryCount(), 0u);
  // The failure was not cached: next lookup is a fresh lead.
  EXPECT_EQ(cache.Lookup(1, "k", &hit, nullptr),
            ResponseCache::Outcome::kMissLead);
  cache.Fill(1, "k", {RpcStatus::kOk, Body("ok")}, true);
}

TEST(ResponseCacheTest, TtlExpiresEntries) {
  ResponseCacheConfig config;
  config.ttl_ms = 40;
  ResponseCache cache(config);
  CachedResponse hit;
  ASSERT_EQ(cache.Lookup(1, "k", &hit, nullptr),
            ResponseCache::Outcome::kMissLead);
  cache.Fill(1, "k", {RpcStatus::kOk, Body("fresh")}, true);
  ASSERT_EQ(cache.Lookup(1, "k", &hit, nullptr),
            ResponseCache::Outcome::kHit);
  SleepMs(60);
  // Expired: the hit becomes a miss and the entry is dropped.
  EXPECT_EQ(cache.Lookup(1, "k", &hit, nullptr),
            ResponseCache::Outcome::kMissLead);
  EXPECT_EQ(cache.EntryCount(), 0u);
  cache.Fill(1, "k", {RpcStatus::kOk, Body("refreshed")}, true);
}

TEST(ResponseCacheTest, LruEvictsPastByteBudget) {
  ResponseCacheConfig config;
  config.shards = 1;  // deterministic: every key in one shard
  config.max_bytes_per_shard = 1000;
  config.ttl_ms = 0;
  ResponseCache cache(config);

  auto fill = [&](const std::string& key) {
    CachedResponse hit;
    if (cache.Lookup(1, key, &hit, nullptr) ==
        ResponseCache::Outcome::kMissLead) {
      cache.Fill(1, key, {RpcStatus::kOk, Body(std::string(300, 'x'))}, true);
    }
  };
  fill("a");
  fill("b");
  fill("c");
  EXPECT_EQ(cache.Evictions(), 0u);
  // Touch "a" so "b" is the LRU victim when "d" overflows the budget.
  CachedResponse hit;
  ASSERT_EQ(cache.Lookup(1, "a", &hit, nullptr),
            ResponseCache::Outcome::kHit);
  fill("d");
  EXPECT_GE(cache.Evictions(), 1u);
  EXPECT_LE(cache.TotalBytes(), 1000u);
  EXPECT_EQ(cache.Lookup(1, "a", &hit, nullptr),
            ResponseCache::Outcome::kHit);
  EXPECT_EQ(cache.Lookup(1, "b", &hit, nullptr),
            ResponseCache::Outcome::kMissLead);
  cache.Fill(1, "b", {RpcStatus::kOk, nullptr}, false);
}

// ---- Fan-out / fan-in ----

RpcCallResult OkLeg(const std::string& payload) {
  RpcCallResult r;
  r.status = RpcStatus::kOk;
  r.payload = payload;
  return r;
}

RpcCallResult FailedLeg(RpcStatus status, bool transport = false) {
  RpcCallResult r;
  r.status = status;
  r.transport_error = transport;
  return r;
}

TEST(FanoutTest, AllPolicyNeedsEveryLeg) {
  LifecycleStats stats;
  FanoutOptions options;
  options.lifecycle = &stats;
  const FanoutResult ok = FanoutCallSync(
      3, [](size_t i, RpcCallback done) { done(OkLeg(std::to_string(i))); },
      options);
  EXPECT_TRUE(ok.satisfied);
  EXPECT_FALSE(ok.degraded);
  EXPECT_EQ(ok.ok, 3u);
  ASSERT_EQ(ok.results.size(), 3u);
  EXPECT_EQ(ok.results[1].payload, "1");
  EXPECT_EQ(stats.mesh_fanout_calls.load(), 1u);
  EXPECT_EQ(stats.mesh_partial_failures.load(), 0u);

  const FanoutResult fail = FanoutCallSync(
      3,
      [](size_t i, RpcCallback done) {
        done(i == 1 ? FailedLeg(RpcStatus::kShed) : OkLeg("x"));
      },
      options);
  EXPECT_FALSE(fail.satisfied);
  EXPECT_EQ(stats.mesh_partial_failures.load(), 1u);
}

TEST(FanoutTest, QuorumToleratesMinorityFailure) {
  FanoutOptions options;
  options.policy = FanoutPolicy::kQuorum;  // default quorum = N/2+1 = 2
  // Legs complete in issue order; the failure (leg 1) lands before the
  // quorum-deciding success (leg 2), so it is in the fired snapshot.
  const FanoutResult fr = FanoutCallSync(
      3,
      [](size_t i, RpcCallback done) {
        done(i == 1 ? FailedLeg(RpcStatus::kError, true) : OkLeg("x"));
      },
      options);
  EXPECT_TRUE(fr.satisfied);
  EXPECT_TRUE(fr.degraded);  // satisfied, but a leg failed
  EXPECT_EQ(fr.ok, 2u);
  EXPECT_EQ(fr.failed, 1u);

  // 2 of 3 failed: quorum unreachable.
  const FanoutResult lost = FanoutCallSync(
      3,
      [](size_t i, RpcCallback done) {
        done(i == 0 ? OkLeg("x") : FailedLeg(RpcStatus::kError));
      },
      options);
  EXPECT_FALSE(lost.satisfied);
}

TEST(FanoutTest, BestEffortWaitsForAllAndReportsGaps) {
  FanoutOptions options;
  options.policy = FanoutPolicy::kBestEffort;
  const FanoutResult fr = FanoutCallSync(
      4,
      [](size_t i, RpcCallback done) {
        done(i % 2 == 0 ? OkLeg("even") : FailedLeg(RpcStatus::kShed));
      },
      options);
  EXPECT_TRUE(fr.satisfied);
  EXPECT_TRUE(fr.degraded);
  EXPECT_EQ(fr.ok, 2u);
  EXPECT_EQ(fr.failed, 2u);
  // Every leg completed (best-effort never fires early).
  for (size_t i = 0; i < 4; ++i) EXPECT_TRUE(fr.completed[i]);

  const FanoutResult none = FanoutCallSync(
      2, [](size_t, RpcCallback done) { done(FailedLeg(RpcStatus::kError)); },
      options);
  EXPECT_FALSE(none.satisfied);
}

TEST(FanoutTest, AllPolicyFiresEarlyOnFirstFailure) {
  // Leg 0 fails immediately; leg 1 completes *after* the group fired. The
  // late completion must be absorbed without a second done().
  std::atomic<int> fired{0};
  RpcCallback late_done;
  std::mutex mu;
  FanoutOptions options;
  FanoutCall(
      2,
      [&](size_t i, RpcCallback done) {
        if (i == 0) {
          done(FailedLeg(RpcStatus::kError));
        } else {
          std::lock_guard<std::mutex> lock(mu);
          late_done = std::move(done);
        }
      },
      options, [&](FanoutResult fr) {
        fired.fetch_add(1);
        EXPECT_FALSE(fr.satisfied);
        EXPECT_FALSE(fr.completed[1]);  // leg 1 still outstanding
      });
  EXPECT_EQ(fired.load(), 1);
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_TRUE(static_cast<bool>(late_done));
    late_done(OkLeg("late"));  // absorbed silently
  }
  EXPECT_EQ(fired.load(), 1);
}

TEST(FanoutTest, ParsePolicyNames) {
  EXPECT_EQ(ParseFanoutPolicy("all"), FanoutPolicy::kAll);
  EXPECT_EQ(ParseFanoutPolicy("quorum"), FanoutPolicy::kQuorum);
  EXPECT_EQ(ParseFanoutPolicy("best-effort"), FanoutPolicy::kBestEffort);
  EXPECT_EQ(ParseFanoutPolicy("best_effort"), FanoutPolicy::kBestEffort);
  EXPECT_EQ(ParseFanoutPolicy("garbage"), FanoutPolicy::kAll);
  EXPECT_STREQ(FanoutPolicyName(FanoutPolicy::kQuorum), "quorum");
}

// ---- RpcChannel / MeshClient against a live RPC server ----

// Echo service: returns the payload; method 2 sheds the first attempt per
// payload (retry fodder); method 3 sleeps 150ms (deadline fodder); method
// 4 reports the deadline budget the server-side admission installed.
std::unique_ptr<Server> StartEchoServer(uint16_t* port) {
  ServerConfig config;
  config.architecture = ServerArchitecture::kMultiLoop;
  config.event_loops = 1;
  config.protocol = "rpc";
  config.deadline_propagation = true;

  ServiceRegistry registry;
  registry.Register(1, "echo",
                    SyncService([](const ServiceRequest& req,
                                   ServiceResponse& resp) {
                      resp.body = req.payload;
                    }));
  auto shed_once = std::make_shared<std::mutex>();
  auto shed_seen = std::make_shared<std::vector<std::string>>();
  registry.Register(
      2, "shed_once",
      SyncService([shed_once, shed_seen](const ServiceRequest& req,
                                         ServiceResponse& resp) {
        std::lock_guard<std::mutex> lock(*shed_once);
        for (const auto& s : *shed_seen) {
          if (s == req.payload) {
            resp.body = req.payload;
            return;
          }
        }
        shed_seen->push_back(req.payload);
        resp.status = RpcStatus::kShed;
      }));
  registry.Register(3, "slow",
                    SyncService([](const ServiceRequest&, ServiceResponse& r) {
                      SleepMs(150);
                      r.body = "slept";
                    }));
  registry.Register(4, "budget",
                    SyncService([](const ServiceRequest&, ServiceResponse& r) {
                      r.body = std::to_string(
                          CurrentRequestDeadline().RemainingMillis());
                    }));
  auto server = CreateServer(config, registry);
  server->Start();
  *port = server->Port();
  return server;
}

TEST(RpcChannelTest, EchoRoundTrip) {
  uint16_t port = 0;
  auto server = StartEchoServer(&port);
  MeshClientConfig config;
  config.server = InetAddr::Loopback(port);
  MeshClient client(config);
  client.Start();

  const RpcCallResult r = client.CallSync(1, "hello mesh", {});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.status, RpcStatus::kOk);
  EXPECT_EQ(r.payload, "hello mesh");

  // Many pipelined calls on one channel, all completed and matched by id.
  FanoutOptions options;
  const FanoutResult fr = FanoutCallSync(
      64,
      [&](size_t i, RpcCallback done) {
        client.Call(1, "leg-" + std::to_string(i), {}, std::move(done));
      },
      options);
  EXPECT_TRUE(fr.satisfied);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_EQ(fr.results[i].payload, "leg-" + std::to_string(i));
  }
  client.Stop();
  server->Stop();
}

TEST(RpcChannelTest, ReconnectsAfterRst) {
  uint16_t port = 0;
  auto server = StartEchoServer(&port);
  MeshClientConfig config;
  config.server = InetAddr::Loopback(port);
  config.channel.reconnect_base_ms = 1.0;
  MeshClient client(config);
  LifecycleStats stats;
  client.BindLifecycle(&stats);
  client.Start();

  ASSERT_TRUE(client.CallSync(1, "before", {}).ok());
  EXPECT_EQ(client.Reconnects(), 0u);

  // Kill the established connection the way a crashed peer would: RST.
  client.ChannelForTest(0).InjectDisconnectForTest();
  // The next call redials (possibly after the 1ms backoff) and succeeds.
  const RpcCallResult after = client.CallSync(1, "after", {});
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(after.payload, "after");
  EXPECT_EQ(client.Reconnects(), 1u);
  EXPECT_EQ(stats.mesh_channel_reconnects.load(), 1u);
  client.Stop();
  server->Stop();
}

TEST(RpcChannelTest, DeadlineExpiryCompletesExpired) {
  uint16_t port = 0;
  auto server = StartEchoServer(&port);
  MeshClientConfig config;
  config.server = InetAddr::Loopback(port);
  config.channel.deadline_propagation = true;
  MeshClient client(config);
  LifecycleStats stats;
  client.BindLifecycle(&stats);
  client.Start();

  RpcCallOptions options;
  options.deadline = Deadline::FromMillis(30);
  const int64_t start = NowNanos();
  const RpcCallResult r = client.CallSync(3, "too slow", options);
  const double waited_ms = static_cast<double>(NowNanos() - start) / 1e6;
  EXPECT_EQ(r.status, RpcStatus::kExpired);
  // The caller got its answer near the deadline, not after the 150ms
  // handler finished (coarse-timer slack allowed).
  EXPECT_LT(waited_ms, 140.0);
  EXPECT_GE(stats.deadline_expired.load(), 1u);
  client.Stop();
  server->Stop();
}

TEST(RpcChannelTest, DeadlineBudgetRidesTheWire) {
  uint16_t port = 0;
  auto server = StartEchoServer(&port);
  MeshClientConfig config;
  config.server = InetAddr::Loopback(port);
  config.channel.deadline_propagation = true;
  MeshClient client(config);
  client.Start();

  RpcCallOptions options;
  options.deadline = Deadline::FromMillis(500);
  const RpcCallResult r = client.CallSync(4, "", options);
  ASSERT_TRUE(r.ok());
  // The server-side admission installed a deadline from the header's
  // decremented budget: positive, and no larger than what we sent.
  const long remaining = std::stol(r.payload);
  EXPECT_GT(remaining, 0);
  EXPECT_LE(remaining, 500);

  // Without a caller deadline nothing is propagated.
  const RpcCallResult bare = client.CallSync(4, "", {});
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(std::stol(bare.payload), 0);
  client.Stop();
  server->Stop();
}

TEST(RpcChannelTest, IdempotentCallsRetryShedsNonIdempotentDont) {
  uint16_t port = 0;
  auto server = StartEchoServer(&port);
  MeshClientConfig config;
  config.server = InetAddr::Loopback(port);
  config.enable_retries = true;
  config.retry.base_backoff_ms = 1.0;
  MeshClient client(config);
  LifecycleStats stats;
  client.BindLifecycle(&stats);
  client.Start();

  // Non-idempotent: the shed must surface, not be replayed (a lost
  // mutation must not become a duplicate side effect).
  RpcCallOptions mutation;
  mutation.idempotent = false;
  const RpcCallResult shed = client.CallSync(2, "write-1", mutation);
  EXPECT_EQ(shed.status, RpcStatus::kShed);
  EXPECT_EQ(stats.retries_issued.load(), 0u);

  // Idempotent: the channel retries past the one-time shed.
  RpcCallOptions query;
  query.idempotent = true;
  const RpcCallResult retried = client.CallSync(2, "read-1", query);
  EXPECT_TRUE(retried.ok());
  EXPECT_EQ(retried.payload, "read-1");
  EXPECT_EQ(stats.retries_issued.load(), 1u);
  client.Stop();
  server->Stop();
}

// ---- Render payload codec + canonical cache key ----

TEST(AppRpcTest, RenderPayloadRoundTrip) {
  using namespace hynet::rubbos;
  RenderParams p;
  p.index = InteractionIndex("ViewStory");
  p.story = 42;
  p.user = 7;
  p.page = 3;
  p.frag = 1;
  p.frags = 4;
  RenderParams decoded;
  ASSERT_TRUE(DecodeRenderPayload(EncodeRenderPayload(p), &decoded));
  EXPECT_EQ(decoded.index, p.index);
  EXPECT_EQ(decoded.story, 42);
  EXPECT_EQ(decoded.user, 7);
  EXPECT_EQ(decoded.page, 3);
  EXPECT_EQ(decoded.frag, 1);
  EXPECT_EQ(decoded.frags, 4);

  RenderParams bad;
  EXPECT_FALSE(DecodeRenderPayload("/render?type=NoSuchServlet", &bad));
  EXPECT_FALSE(
      DecodeRenderPayload("/render?type=ViewStory&frag=2&frags=2", &bad));
  EXPECT_FALSE(DecodeRenderPayload("/other?type=ViewStory", &bad));
}

TEST(AppRpcTest, CanonicalKeyDropsUnusedDimensions) {
  using namespace hynet::rubbos;
  // StoriesOfTheDay reads only the page: story/user must not shatter it.
  RenderParams a, b;
  a.index = b.index = InteractionIndex("StoriesOfTheDay");
  a.story = 1;
  a.user = 100;
  b.story = 2;
  b.user = 200;
  EXPECT_EQ(CanonicalCacheKey(a), CanonicalCacheKey(b));
  b.page = 5;
  EXPECT_NE(CanonicalCacheKey(a), CanonicalCacheKey(b));

  // ViewStory reads the story id.
  RenderParams s1, s2;
  s1.index = s2.index = InteractionIndex("ViewStory");
  s1.story = 1;
  s2.story = 2;
  EXPECT_NE(CanonicalCacheKey(s1), CanonicalCacheKey(s2));

  // Fragment slot is always part of the key.
  RenderParams f = s1;
  f.frag = 1;
  f.frags = 2;
  EXPECT_NE(CanonicalCacheKey(s1), CanonicalCacheKey(f));
}

// ---- 3-tier system on the rpc transport ----

HttpResponse FetchFront(uint16_t port, const std::string& target) {
  Socket sock = Socket::CreateTcp(false);
  sock.Connect(InetAddr::Loopback(port));
  const std::string wire = BuildGetRequest(target);
  size_t off = 0;
  while (off < wire.size()) {
    const IoResult r =
        WriteFd(sock.fd(), wire.data() + off, wire.size() - off);
    if (r.Fatal()) throw std::runtime_error("write failed");
    off += static_cast<size_t>(r.n);
  }
  HttpResponseParser parser;
  ByteBuffer in;
  char buf[16 * 1024];
  while (true) {
    const ParseStatus st = parser.Parse(in);
    if (st == ParseStatus::kComplete) return parser.response();
    if (st == ParseStatus::kError) throw std::runtime_error("parse error");
    const IoResult r = ReadFd(sock.fd(), buf, sizeof(buf));
    if (r.n <= 0) throw std::runtime_error("connection lost");
    in.Append(buf, static_cast<size_t>(r.n));
  }
}

TEST(MeshSystemTest, RpcTransportServesInteractionsWithFanout) {
  using namespace hynet::rubbos;
  ThreeTierConfig config;
  config.transport = "rpc";
  config.fanout = 2;
  config.app_cache_ttl_ms = 5000;
  ThreeTierSystem system(config);
  system.Start();

  // A read-heavy interaction: fragments carry the plan + scaffold.
  const size_t view = InteractionIndex("ViewStory");
  const HttpResponse first =
      FetchFront(system.FrontPort(), InteractionTarget(view, 3, 1, 0));
  EXPECT_EQ(first.status, 200);
  EXPECT_GE(first.body.size(), kInteractions[view].html_bytes);

  // The same page again: both fragments now come from the cache.
  ASSERT_NE(system.app_cache(), nullptr);
  const uint64_t misses_after_first = system.app_cache()->Misses();
  EXPECT_GE(misses_after_first, 2u);  // one per fragment
  const HttpResponse second =
      FetchFront(system.FrontPort(), InteractionTarget(view, 3, 1, 0));
  EXPECT_EQ(second.status, 200);
  EXPECT_EQ(second.body.size(), first.body.size());
  EXPECT_GE(system.app_cache()->Hits(), 2u);
  EXPECT_EQ(system.app_cache()->Misses(), misses_after_first);

  // A mutation (StoreComment) must not be cached, and must succeed.
  const size_t store = InteractionIndex("StoreComment");
  const HttpResponse mutation =
      FetchFront(system.FrontPort(), InteractionTarget(store, 3, 1, 0));
  EXPECT_EQ(mutation.status, 200);

  // Unknown interaction maps through the mesh to 404.
  const HttpResponse missing =
      FetchFront(system.FrontPort(), "/rubbos?type=NoSuchServlet");
  EXPECT_EQ(missing.status, 404);

  // The fan-out plane was exercised end to end.
  const ServerCounters web = system.WebSnapshot();
  EXPECT_GE(web.mesh_fanout_calls, 3u);
  EXPECT_EQ(web.mesh_partial_failures, 0u);
  system.Stop();
}

TEST(MeshSystemTest, SyncTransportUnchangedAsControl) {
  using namespace hynet::rubbos;
  ThreeTierConfig config;  // transport = "sync" default
  ThreeTierSystem system(config);
  system.Start();
  const size_t view = rubbos::InteractionIndex("ViewStory");
  const HttpResponse resp =
      FetchFront(system.FrontPort(), InteractionTarget(view, 3, 1, 0));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(system.app_cache(), nullptr);
  EXPECT_EQ(system.db_mesh(), nullptr);
  system.Stop();
}

}  // namespace
}  // namespace hynet
