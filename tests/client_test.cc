// Tests for the load generator and bench harness: closed-loop semantics,
// phase hooks, target mixing, and harness plumbing.
#include <gtest/gtest.h>

#include <atomic>

#include "client/bench_runner.h"
#include "client/load_gen.h"
#include "core/hybrid_server.h"

namespace hynet {
namespace {

std::unique_ptr<Server> StartServer(ServerArchitecture arch) {
  ServerConfig config;
  config.architecture = arch;
  auto server = CreateServer(config, MakeBenchHandler());
  server->Start();
  return server;
}

TEST(LoadGen, ClosedLoopKeepsConcurrencyConstant) {
  auto server = StartServer(ServerArchitecture::kSingleThread);
  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 7;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.3;
  lc.targets = {{BenchTarget(128, 0), 1.0}};
  const LoadResult result = RunLoad(lc);
  server->Stop();

  EXPECT_EQ(result.errors, 0u);
  EXPECT_GT(result.completed, 20u);
  // Exactly 7 connections were opened (closed loop, no churn).
  // completed latencies were recorded for each response.
  EXPECT_EQ(result.latency.Count(), result.completed);
}

TEST(LoadGen, PhaseHooksFireInOrder) {
  auto server = StartServer(ServerArchitecture::kSingleThread);
  std::vector<std::string> events;
  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 2;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.1;
  lc.targets = {{BenchTarget(64, 0), 1.0}};
  lc.on_measure_start = [&] { events.push_back("start"); };
  lc.on_measure_end = [&] { events.push_back("end"); };
  const LoadResult result = RunLoad(lc);
  server->Stop();

  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "start");
  EXPECT_EQ(events[1], "end");
  EXPECT_GT(result.elapsed_sec, 0.05);
  EXPECT_LT(result.elapsed_sec, 2.0);
}

TEST(LoadGen, MixedTargetsFollowWeights) {
  std::atomic<int> small{0}, large{0};
  ServerConfig config;
  config.architecture = ServerArchitecture::kSingleThread;
  auto server = CreateServer(config, [&](const HttpRequest& req,
                                         HttpResponse& resp) {
    const auto size = static_cast<size_t>(req.QueryParamInt("size", 0));
    (size > 1000 ? large : small)++;
    resp.body.assign(size, 'm');
  });
  server->Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 4;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.5;
  lc.targets = {{BenchTarget(100, 0), 0.9}, {BenchTarget(10000, 0), 0.1}};
  lc.seed = 99;
  const LoadResult result = RunLoad(lc);
  server->Stop();

  ASSERT_GT(result.completed, 100u);
  const double large_share =
      static_cast<double>(large.load()) /
      static_cast<double>(small.load() + large.load());
  EXPECT_NEAR(large_share, 0.1, 0.05);
}

TEST(LoadGen, SurvivesServerSideConnectionCloses) {
  // Handler closes every connection (Connection: close); the generator
  // must reconnect and keep the offered concurrency.
  ServerConfig config;
  config.architecture = ServerArchitecture::kThreadPerConn;
  auto server = CreateServer(config, [](const HttpRequest&,
                                        HttpResponse& resp) {
    resp.keep_alive = false;
    resp.body = "bye";
  });
  server->Start();

  LoadConfig lc;
  lc.server = InetAddr::Loopback(server->Port());
  lc.connections = 3;
  lc.warmup_sec = 0.05;
  lc.measure_sec = 0.3;
  lc.targets = {{"/", 1.0}};
  const LoadResult result = RunLoad(lc);
  server->Stop();

  EXPECT_GT(result.completed, 5u);
}

TEST(BenchHandler, HonorsSizeAndCpuParams) {
  const Handler handler = MakeBenchHandler();
  HttpRequest req;
  req.target = "/bench?size=2048&us=0";
  req.path = "/bench";
  req.query = {{"size", "2048"}, {"us", "0"}};
  HttpResponse resp;
  handler(req, resp);
  // The body is shared across responses of the same size (zero-copy path).
  ASSERT_NE(resp.shared_body, nullptr);
  EXPECT_EQ(resp.shared_body->size(), 2048u);
  EXPECT_EQ(resp.PayloadBytes(), 2048u);

  // A second response of the same size reuses the same allocation.
  HttpResponse again;
  handler(req, again);
  EXPECT_EQ(again.shared_body.get(), resp.shared_body.get());
}

TEST(BenchHandler, TargetBuilderRoundTrips) {
  const std::string target = BenchTarget(12345, 67);
  EXPECT_NE(target.find("size=12345"), std::string::npos);
  EXPECT_NE(target.find("us=67"), std::string::npos);
}

TEST(BenchRunner, CountersDeltaScopedToWindow) {
  BenchPoint point;
  point.server.architecture = ServerArchitecture::kSingleThread;
  point.concurrency = 4;
  point.warmup_sec = 0.1;
  point.measure_sec = 0.3;
  point.targets = {{BenchTarget(256, 0), 1.0}};
  const BenchPointResult r = RunBenchPoint(point);

  EXPECT_GT(r.Throughput(), 100.0);
  // Window-scoped counters exclude warmup traffic, so they must be close
  // to the client-side completion count. The snapshot hooks fire on the
  // client thread while the server keeps processing, so the boundary can
  // be off by up to the in-flight request count (the concurrency).
  EXPECT_GE(r.counters.requests_handled + 4, r.load.completed);
  EXPECT_LT(r.counters.requests_handled, r.load.completed * 2 + 100);
  EXPECT_GT(r.activity.elapsed_sec, 0.2);
  EXPECT_GT(r.process_cpu.Total(), 0.0);
}

TEST(BenchRunner, DefaultCpuModelMonotonicInSize) {
  EXPECT_LT(DefaultCpuUs(100), DefaultCpuUs(10 * 1024));
  EXPECT_LT(DefaultCpuUs(10 * 1024), DefaultCpuUs(100 * 1024));
}

TEST(BenchRunner, CounterSubtraction) {
  ServerCounters a, b;
  a.requests_handled = 10;
  a.write_calls = 20;
  b.requests_handled = 4;
  b.write_calls = 5;
  const ServerCounters d = a - b;
  EXPECT_EQ(d.requests_handled, 6u);
  EXPECT_EQ(d.write_calls, 15u);
}

}  // namespace
}  // namespace hynet
