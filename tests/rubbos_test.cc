// Tests for the mini 3-tier RUBBoS system: dataset, DB tier, connection
// pool, app logic, web tier, and the assembled system under the Markov
// workload.
#include <gtest/gtest.h>

#include <thread>

#include "rubbos/app_logic.h"
#include "rubbos/db_client.h"
#include "rubbos/db_server.h"
#include "rubbos/system.h"
#include "rubbos/web_tier.h"

namespace hynet::rubbos {
namespace {

TEST(DbDataset, GeneratesDeterministically) {
  const DbDataset a = DbDataset::Generate(50, 4, 20, 99);
  const DbDataset b = DbDataset::Generate(50, 4, 20, 99);
  ASSERT_EQ(a.stories.size(), 50u);
  ASSERT_EQ(a.comments.size(), 200u);
  ASSERT_EQ(a.users.size(), 20u);
  EXPECT_EQ(a.stories[7].body, b.stories[7].body);
  EXPECT_EQ(a.comments[123].text, b.comments[123].text);
}

TEST(DbDataset, StoryBodiesAreRealistic) {
  const DbDataset db = DbDataset::Generate(20, 2, 5, 1);
  for (const auto& story : db.stories) {
    EXPECT_GE(story.body.size(), 1024u);
    EXPECT_LE(story.body.size(), 4096u);
    EXPECT_FALSE(story.title.empty());
  }
}

class DbServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<DbServer>(DbDataset::Generate(100, 4, 50, 3),
                                     /*cpu_us_per_query=*/5);
    db_->Start();
    pool_ = std::make_unique<DbConnectionPool>(
        InetAddr::Loopback(db_->Port()), 4);
  }

  std::unique_ptr<DbServer> db_;
  std::unique_ptr<DbConnectionPool> pool_;
};

TEST_F(DbServerTest, StoryListReturnsTwentyRows) {
  const HttpResponse resp = pool_->Query("/q/story_list?page=0");
  EXPECT_EQ(resp.status, 200);
  int rows = 0;
  for (char c : resp.body) {
    if (c == '\n') rows++;
  }
  EXPECT_EQ(rows, 20);
}

TEST_F(DbServerTest, StoryDetailRoundTrips) {
  const HttpResponse resp = pool_->Query("/q/story_detail?id=5");
  EXPECT_EQ(resp.status, 200);
  EXPECT_GE(resp.body.size(), 1024u);
}

TEST_F(DbServerTest, MissingStoryIs404) {
  const HttpResponse resp = pool_->Query("/q/story_detail?id=100000");
  EXPECT_EQ(resp.status, 404);
}

TEST_F(DbServerTest, InsertCommentIsVisibleToLaterQuery) {
  const HttpResponse before = pool_->Query("/q/comments?story=3");
  const HttpResponse ins = pool_->Query("/q/insert_comment?story=3");
  EXPECT_EQ(ins.status, 200);
  const HttpResponse after = pool_->Query("/q/comments?story=3");
  EXPECT_GT(after.body.size(), before.body.size());
}

TEST_F(DbServerTest, PoolIsSafeUnderConcurrentQueries) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 30;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const HttpResponse r = pool_->Query("/q/story_list?page=1");
        if (r.status != 200) failures++;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(pool_->QueriesIssued(),
            static_cast<uint64_t>(kThreads * kQueriesPerThread));
}

TEST(Interactions, TableIsWellFormed) {
  ASSERT_EQ(kInteractions.size(), kInteractionCount);
  double total_weight = 0;
  for (const auto& ix : kInteractions) {
    EXPECT_GT(ix.weight, 0.0) << ix.name;
    EXPECT_GE(ix.app_cpu_us, 0.0) << ix.name;
    EXPECT_GT(ix.html_bytes, 0u) << ix.name;
    total_weight += ix.weight;
  }
  EXPECT_NEAR(total_weight, 1.0, 0.02);
  // At least one interaction issues each query type.
  int sl = 0, sd = 0, cm = 0, us = 0, se = 0, in = 0;
  for (const auto& ix : kInteractions) {
    sl += ix.q_story_list;
    sd += ix.q_story_detail;
    cm += ix.q_comments;
    us += ix.q_user;
    se += ix.q_search;
    in += ix.q_insert;
  }
  EXPECT_GT(sl, 0);
  EXPECT_GT(sd, 0);
  EXPECT_GT(cm, 0);
  EXPECT_GT(us, 0);
  EXPECT_GT(se, 0);
  EXPECT_GT(in, 0);
}

TEST(Interactions, IndexLookup) {
  EXPECT_EQ(InteractionIndex("ViewStory"), 4u);
  EXPECT_EQ(InteractionIndex("NoSuchInteraction"), kInteractionCount);
}

TEST(ThreeTier, ServesWorkloadEndToEnd) {
  ThreeTierConfig sys;
  sys.app_architecture = ServerArchitecture::kThreadPerConn;
  sys.db_stories = 100;
  sys.db_users = 50;

  RubbosWorkloadConfig load;
  load.users = 20;
  load.think_time_sec = 0.05;
  load.warmup_sec = 0.3;
  load.measure_sec = 1.0;

  const ThreeTierPointResult result = RunThreeTierPoint(sys, load);
  EXPECT_EQ(result.workload.errors, 0u);
  EXPECT_GT(result.workload.completed, 20u);
  EXPECT_GT(result.Throughput(), 10.0);
}

TEST(ThreeTier, AsyncAppTierAlsoServes) {
  ThreeTierConfig sys;
  sys.app_architecture = ServerArchitecture::kReactorPool;
  sys.db_stories = 100;
  sys.db_users = 50;

  RubbosWorkloadConfig load;
  load.users = 20;
  load.think_time_sec = 0.05;
  load.warmup_sec = 0.3;
  load.measure_sec = 1.0;

  const ThreeTierPointResult result = RunThreeTierPoint(sys, load);
  EXPECT_EQ(result.workload.errors, 0u);
  EXPECT_GT(result.workload.completed, 20u);
}

}  // namespace
}  // namespace hynet::rubbos
