// Property tests on the deterministic simulated transport: the exact
// ACK-clocked write-spin arithmetic of Figure 5, and the loop-strategy
// comparison behind Figures 7/9 (spin-until-done vs capped round-robin).
#include <gtest/gtest.h>

#include "simnet/sim_clock.h"
#include "simnet/sim_network.h"
#include "simnet/sim_tcp.h"

namespace hynet::simnet {
namespace {

TEST(SimScheduler, FiresInTimestampThenInsertionOrder) {
  SimClock clock;
  SimScheduler sched(clock);
  std::vector<int> order;
  sched.At(10, [&] { order.push_back(2); });
  sched.At(5, [&] { order.push_back(1); });
  sched.At(10, [&] { order.push_back(3); });  // same time, inserted later
  sched.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.now_us(), 10);
}

TEST(SimScheduler, RunUntilStopsAtBoundary) {
  SimClock clock;
  SimScheduler sched(clock);
  int fired = 0;
  sched.At(5, [&] { fired++; });
  sched.At(15, [&] { fired++; });
  sched.RunUntil(10);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(clock.now_us(), 10);
  sched.RunAll();
  EXPECT_EQ(fired, 2);
}

TEST(SimTcp, WriteBoundedBySendBuffer) {
  SimClock clock;
  SimScheduler sched(clock);
  SimTcpSender sender(clock, sched, {16 * 1024, 1000});
  EXPECT_EQ(sender.Write(100 * 1024), 16 * 1024);  // first write fills it
  EXPECT_EQ(sender.Write(100 * 1024), 0);           // full: zero write
  EXPECT_EQ(sender.zero_writes(), 1u);
  EXPECT_EQ(sender.FreeSpace(), 0);
}

TEST(SimTcp, AckFreesBufferAfterRtt) {
  SimClock clock;
  SimScheduler sched(clock);
  SimTcpSender sender(clock, sched, {16 * 1024, 1000});
  sender.Write(16 * 1024);
  EXPECT_EQ(sender.NextAckTimeUs(), 1000);
  sched.RunUntil(999);
  EXPECT_EQ(sender.FreeSpace(), 0);
  sched.RunUntil(1000);
  EXPECT_EQ(sender.FreeSpace(), 16 * 1024);
  EXPECT_EQ(sender.DeliveredBytes(), 16 * 1024);
}

TEST(SimTcp, SmallResponseNeedsExactlyOneWrite) {
  SimClock clock;
  SimScheduler sched(clock);
  SimTcpSender sender(clock, sched, {16 * 1024, 1000});
  EXPECT_EQ(sender.Write(102), 102);  // 0.1 KB: Table IV row 1
  EXPECT_EQ(sender.write_calls(), 1u);
  EXPECT_EQ(sender.zero_writes(), 0u);
}

// Figure 5 arithmetic: a response of R bytes through a B-byte buffer needs
// exactly ceil(R/B) productive writes, spaced one RTT apart.
class WriteSpinArithmetic
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(WriteSpinArithmetic, ProductiveWritesAreCeilRoverB) {
  const auto [response, buffer] = GetParam();
  SimClock clock;
  SimScheduler sched(clock);
  SimTcpSender sender(clock, sched, {buffer, 2000});

  int64_t remaining = response;
  uint64_t productive = 0;
  while (remaining > 0) {
    const int64_t n = sender.Write(remaining);
    if (n > 0) {
      productive++;
      remaining -= n;
    } else {
      const int64_t ack = sender.NextAckTimeUs();
      ASSERT_GE(ack, 0) << "blocked with nothing in flight";
      sched.RunUntil(ack);
    }
  }
  const auto expected =
      static_cast<uint64_t>((response + buffer - 1) / buffer);
  EXPECT_EQ(productive, expected);

  // Completion takes (ceil(R/B) - 1) RTTs of buffer-full waiting plus the
  // final one-way delivery.
  sched.RunAll();
  const int64_t expected_makespan =
      (static_cast<int64_t>(expected) - 1) * 2000 + 1000;
  EXPECT_EQ(sender.LastDeliveryTimeUs(), expected_makespan);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, WriteSpinArithmetic,
    ::testing::Values(std::make_tuple<int64_t, int64_t>(100 * 1024, 16 * 1024),
                      std::make_tuple<int64_t, int64_t>(100 * 1024, 100 * 1024),
                      std::make_tuple<int64_t, int64_t>(10 * 1024, 16 * 1024),
                      std::make_tuple<int64_t, int64_t>(1 << 20, 16 * 1024),
                      std::make_tuple<int64_t, int64_t>(64 * 1024, 8 * 1024)));

TEST(SimLoop, SpinStrategySerializesConnections) {
  SimLoopConfig config;
  config.connections = 10;
  config.response_bytes = 100 * 1024;
  config.send_buffer_bytes = 16 * 1024;
  config.rtt_us = 2000;
  config.strategy = WriteStrategy::kSpinUntilDone;
  const SimLoopResult result = SimulateEventLoopWrites(config);

  // ceil(100/16) = 7 writes per response; the naive loop glues itself to
  // one connection for ~6 RTTs, so total makespan ~ N * 6 RTTs.
  EXPECT_GE(result.makespan_us, 10 * 6 * 2000);
  EXPECT_GT(result.total_zero_writes, 0u);
}

TEST(SimLoop, CappedStrategyOverlapsConnections) {
  SimLoopConfig base;
  base.connections = 10;
  base.response_bytes = 100 * 1024;
  base.send_buffer_bytes = 16 * 1024;
  base.rtt_us = 2000;

  SimLoopConfig spin = base;
  spin.strategy = WriteStrategy::kSpinUntilDone;
  SimLoopConfig capped = base;
  capped.strategy = WriteStrategy::kCappedSpin;
  capped.spin_cap = 16;

  const SimLoopResult spin_result = SimulateEventLoopWrites(spin);
  const SimLoopResult capped_result = SimulateEventLoopWrites(capped);

  // The Netty-style loop interleaves the 10 transfers: its makespan stays
  // within a small multiple of a single transfer, several times better
  // than the serializing spin loop (Figure 7's SingleT vs Netty gap).
  EXPECT_LT(capped_result.makespan_us * 3, spin_result.makespan_us);
  // Both deliver everything.
  EXPECT_EQ(capped_result.completion_us.size(), 10u);
  for (int64_t t : capped_result.completion_us) EXPECT_GT(t, 0);
}

TEST(SimLoop, LargerBufferRemovesTheGap) {
  SimLoopConfig config;
  config.connections = 8;
  config.response_bytes = 100 * 1024;
  config.send_buffer_bytes = 128 * 1024;  // response fits: no spin at all
  config.rtt_us = 2000;
  config.strategy = WriteStrategy::kSpinUntilDone;
  const SimLoopResult result = SimulateEventLoopWrites(config);
  EXPECT_EQ(result.total_zero_writes, 0u);
  // One write per connection.
  EXPECT_EQ(result.total_write_calls, 8u);
}

TEST(SimLoop, RttScalesSpinMakespanLinearly) {
  auto run = [](int64_t rtt) {
    SimLoopConfig config;
    config.connections = 4;
    config.response_bytes = 64 * 1024;
    config.send_buffer_bytes = 16 * 1024;
    config.rtt_us = rtt;
    config.strategy = WriteStrategy::kSpinUntilDone;
    return SimulateEventLoopWrites(config).makespan_us;
  };
  const int64_t at_1ms = run(1000);
  const int64_t at_5ms = run(5000);
  // Figure 7: response time amplification is linear in the added latency.
  EXPECT_NEAR(static_cast<double>(at_5ms) / static_cast<double>(at_1ms),
              5.0, 1.0);
}

}  // namespace
}  // namespace hynet::simnet
